"""In-memory distributed file system (HDFS stand-in).

Files hold JSON-like rows and are split into fixed-size *blocks*; a block is
the unit of (a) map-task input assignment and (b) pilot-run sampling, exactly
matching how the paper's PILR algorithm samples "splits" of a relation
(Section 4.2). Byte sizes are estimated from the owning schema so the
simulator's I/O accounting is consistent end to end.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.data.columns import SplitBatch, column_index, to_column_array
from repro.data.schema import Schema, column_values_conform
from repro.data.table import Row, Table
from repro.errors import StorageError


@dataclass(frozen=True)
class Split:
    """One block of a DFS file: a contiguous run of rows."""

    file_name: str
    index: int
    start_row: int
    row_count: int
    size_bytes: int

    def describe(self) -> str:
        return f"{self.file_name}[{self.index}]"


@dataclass
class DFSFile:
    """A file: schema + rows, pre-partitioned into splits."""

    name: str
    schema: Schema
    rows: list[Row]
    block_size_bytes: int
    splits: list[Split] = field(default_factory=list)
    size_bytes: int = 0
    #: per-row estimated sizes; accepted from callers that already sized
    #: the rows with the schema's estimator (job finalize does), otherwise
    #: computed in bulk by :meth:`_build_splits`.
    row_sizes: list[int] | None = None
    #: lazy column caches shared by every split/read of this file.
    _columns: dict[str, list] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _arrays: dict[str, object] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    #: memo for :meth:`sizes_are_value_exact` (None until first asked).
    _sizes_exact: bool | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if self.block_size_bytes <= 0:
            raise StorageError("block size must be positive")
        self._build_splits()

    def _build_splits(self) -> None:
        self.splits = []
        start = 0
        block_rows = 0
        block_bytes = 0
        sizes = self.row_sizes
        if sizes is None or len(sizes) != len(self.rows):
            sizes = self.schema.estimated_row_sizes(self.rows)
            self.row_sizes = sizes
        self.size_bytes = sum(sizes)
        block_size_bytes = self.block_size_bytes
        for position, row_bytes in enumerate(sizes):
            if block_bytes + row_bytes > block_size_bytes and block_rows:
                self._append_split(start, block_rows, block_bytes)
                start = position
                block_rows = 0
                block_bytes = 0
            block_rows += 1
            block_bytes += row_bytes
        if block_rows or not self.splits:
            self._append_split(start, block_rows, block_bytes)

    def _append_split(self, start: int, rows: int, size: int) -> None:
        self.splits.append(
            Split(self.name, len(self.splits), start, rows, size)
        )

    # -- access --------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def split_rows(self, split: Split) -> list[Row]:
        if split.file_name != self.name:
            raise StorageError(
                f"split {split.describe()} does not belong to {self.name}"
            )
        return self.rows[split.start_row:split.start_row + split.row_count]

    def split_batch(self, split: Split) -> SplitBatch:
        """Columnar view of one split (shares the file's column caches)."""
        start = split.start_row
        stop = start + split.row_count
        return SplitBatch(self.split_rows(split), self, start, stop)

    @property
    def sizes_are_value_exact(self) -> bool:
        """True when stored row sizes equal ``estimate_value_size`` per row.

        Three ways a file earns this (the invariant :class:`SplitBatch`
        relies on to reuse stored sizes for batch byte accounting):

        * an empty schema sends every field through the schema-free
          fallback of :meth:`Schema.estimated_row_size`, which *is* the
          value estimator;
        * the writer supplied ``row_sizes`` it computed with the value
          estimator (the runtime's job-finalize path);
        * the schema's field kinds all size value-exactly for conforming
          values (:attr:`Schema.sizes_value_exact_kinds`) and a one-time
          per-column type scan confirms every stored value conforms.

        The scan result is memoized, so typed base-table files pay one
        column sweep instead of re-sizing every row on every batch read.
        """
        exact = self._sizes_exact
        if exact is None:
            exact = self._check_sizes_value_exact()
            self._sizes_exact = exact
        return exact

    def _check_sizes_value_exact(self) -> bool:
        schema = self.schema
        if not schema.fields:
            return True
        if not schema.sizes_value_exact_scannable:
            return False
        return all(
            column_values_conform(ftype.kind, self.column_values(name))
            for name, ftype in schema.fields
        )

    def column_values(self, name: str) -> list:
        """Values of ``name`` across all rows, gathered once and cached."""
        values = self._columns.get(name)
        if values is None:
            rows = self.rows
            if name in column_index(self.schema.names):
                try:
                    values = [row[name] for row in rows]
                except KeyError:  # sparse row despite a declared field
                    values = [row.get(name) for row in rows]
            else:
                values = [row.get(name) for row in rows]
            self._columns[name] = values
        return values

    def column_array(self, name: str) -> object:
        """numpy array of ``name`` when eligible (cached), else None."""
        arrays = self._arrays
        if name in arrays:
            return arrays[name]
        array = to_column_array(self.column_values(name))
        arrays[name] = array
        return array

    def iter_rows(self) -> Iterator[Row]:
        return iter(self.rows)

    def as_table(self) -> Table:
        return Table(self.name, self.schema, list(self.rows))


class DistributedFileSystem:
    """Namespace of :class:`DFSFile` objects plus byte accounting.

    Byte accounting is lock-protected: the data passes of concurrently
    executing jobs (``repro.cluster.parallel``) read splits from worker
    threads, and ``int`` read-modify-write is not atomic under free
    threading. Namespace *writes* stay driver-only by construction.
    """

    def __init__(self, block_size_bytes: int = 64 * 1024):
        if block_size_bytes <= 0:
            raise StorageError("block size must be positive")
        self.block_size_bytes = block_size_bytes
        self._files: dict[str, DFSFile] = {}
        self.bytes_written = 0
        self.bytes_read = 0
        #: bytes written/re-read by spilling hybrid-hash-join tasks.
        #: Spill partitions are task-local scratch, not namespace files
        #: (worker threads must never mutate the namespace), so only the
        #: byte traffic is recorded here.
        self.spill_bytes_written = 0
        self.spill_bytes_read = 0
        self._accounting_lock = threading.Lock()

    # -- namespace operations -------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def write_table(self, table: Table, name: str | None = None,
                    overwrite: bool = False) -> DFSFile:
        """Materialize a table as a DFS file (the load path).

        Sizing and the value-exactness scan are memoized on the table,
        so loading the same table into many DFS instances (every bench
        rep, every service run) pays them once.
        """
        row_sizes, sizes_exact = table.dfs_size_hints()
        return self.write_rows(
            name or table.name, table.schema, table.rows,
            overwrite=overwrite, row_sizes=row_sizes, sizes_exact=sizes_exact,
        )

    def write_rows(self, name: str, schema: Schema, rows: Iterable[Row],
                   overwrite: bool = False,
                   row_sizes: list[int] | None = None,
                   sizes_exact: bool | None = None) -> DFSFile:
        """Materialize rows as a DFS file (the job-output path).

        ``row_sizes`` lets callers that already sized every row (job
        finalize did it for the byte counters; ``write_table`` caches it
        on the table) skip the re-walk; sizes are validated by length.
        ``sizes_exact`` pre-answers :attr:`DFSFile.sizes_are_value_exact`
        for callers that already know; when omitted, provided sizes are
        taken as value-exact (the finalize contract), and files without
        provided sizes scan lazily.
        """
        if not name:
            raise StorageError("file name must be non-empty")
        if self.exists(name) and not overwrite:
            raise StorageError(f"file already exists: {name!r}")
        dfs_file = DFSFile(name, schema, list(rows), self.block_size_bytes,
                           row_sizes=row_sizes)
        if row_sizes is not None and dfs_file.row_sizes is row_sizes:
            dfs_file._sizes_exact = True if sizes_exact is None else sizes_exact
        self._files[name] = dfs_file
        with self._accounting_lock:
            self.bytes_written += dfs_file.size_bytes
        return dfs_file

    def open(self, name: str) -> DFSFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        del self._files[name]

    def delete_if_exists(self, name: str) -> bool:
        """Delete ``name`` if present; returns whether it existed.

        Used by fault injection's node-loss events: losing an already
        re-materialized (or never-written) output is a no-op, not an
        error.
        """
        if name not in self._files:
            return False
        del self._files[name]
        return True

    # -- data-path operations ---------------------------------------------

    def read_split(self, split: Split) -> list[Row]:
        rows = self.open(split.file_name).split_rows(split)
        with self._accounting_lock:
            self.bytes_read += split.size_bytes
        return rows

    def read_split_batch(self, split: Split) -> SplitBatch:
        """Columnar read of one split; charges bytes like :meth:`read_split`."""
        batch = self.open(split.file_name).split_batch(split)
        with self._accounting_lock:
            self.bytes_read += split.size_bytes
        return batch

    def read_all(self, name: str) -> list[Row]:
        dfs_file = self.open(name)
        with self._accounting_lock:
            self.bytes_read += dfs_file.size_bytes
        return list(dfs_file.rows)

    def charge_spill(self, bytes_written: int, bytes_read: int) -> None:
        """Account spill traffic (thread-safe; callable from task code)."""
        with self._accounting_lock:
            self.spill_bytes_written += bytes_written
            self.spill_bytes_read += bytes_read

    def file_size(self, name: str) -> int:
        return self.open(name).size_bytes

    def file_splits(self, name: str) -> list[Split]:
        return list(self.open(name).splits)
