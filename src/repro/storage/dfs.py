"""In-memory distributed file system (HDFS stand-in).

Files hold JSON-like rows and are split into fixed-size *blocks*; a block is
the unit of (a) map-task input assignment and (b) pilot-run sampling, exactly
matching how the paper's PILR algorithm samples "splits" of a relation
(Section 4.2). Byte sizes are estimated from the owning schema so the
simulator's I/O accounting is consistent end to end.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.data.schema import Schema
from repro.data.table import Row, Table
from repro.errors import StorageError


@dataclass(frozen=True)
class Split:
    """One block of a DFS file: a contiguous run of rows."""

    file_name: str
    index: int
    start_row: int
    row_count: int
    size_bytes: int

    def describe(self) -> str:
        return f"{self.file_name}[{self.index}]"


@dataclass
class DFSFile:
    """A file: schema + rows, pre-partitioned into splits."""

    name: str
    schema: Schema
    rows: list[Row]
    block_size_bytes: int
    splits: list[Split] = field(default_factory=list)
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.block_size_bytes <= 0:
            raise StorageError("block size must be positive")
        self._build_splits()

    def _build_splits(self) -> None:
        self.splits = []
        self.size_bytes = 0
        start = 0
        block_rows = 0
        block_bytes = 0
        for position, row in enumerate(self.rows):
            row_bytes = self.schema.estimated_row_size(row)
            if block_bytes + row_bytes > self.block_size_bytes and block_rows:
                self._append_split(start, block_rows, block_bytes)
                start = position
                block_rows = 0
                block_bytes = 0
            block_rows += 1
            block_bytes += row_bytes
            self.size_bytes += row_bytes
        if block_rows or not self.splits:
            self._append_split(start, block_rows, block_bytes)

    def _append_split(self, start: int, rows: int, size: int) -> None:
        self.splits.append(
            Split(self.name, len(self.splits), start, rows, size)
        )

    # -- access --------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def split_rows(self, split: Split) -> list[Row]:
        if split.file_name != self.name:
            raise StorageError(
                f"split {split.describe()} does not belong to {self.name}"
            )
        return self.rows[split.start_row:split.start_row + split.row_count]

    def iter_rows(self) -> Iterator[Row]:
        return iter(self.rows)

    def as_table(self) -> Table:
        return Table(self.name, self.schema, list(self.rows))


class DistributedFileSystem:
    """Namespace of :class:`DFSFile` objects plus byte accounting.

    Byte accounting is lock-protected: the data passes of concurrently
    executing jobs (``repro.cluster.parallel``) read splits from worker
    threads, and ``int`` read-modify-write is not atomic under free
    threading. Namespace *writes* stay driver-only by construction.
    """

    def __init__(self, block_size_bytes: int = 64 * 1024):
        if block_size_bytes <= 0:
            raise StorageError("block size must be positive")
        self.block_size_bytes = block_size_bytes
        self._files: dict[str, DFSFile] = {}
        self.bytes_written = 0
        self.bytes_read = 0
        #: bytes written/re-read by spilling hybrid-hash-join tasks.
        #: Spill partitions are task-local scratch, not namespace files
        #: (worker threads must never mutate the namespace), so only the
        #: byte traffic is recorded here.
        self.spill_bytes_written = 0
        self.spill_bytes_read = 0
        self._accounting_lock = threading.Lock()

    # -- namespace operations -------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def write_table(self, table: Table, name: str | None = None,
                    overwrite: bool = False) -> DFSFile:
        """Materialize a table as a DFS file (the load path)."""
        return self.write_rows(
            name or table.name, table.schema, table.rows, overwrite=overwrite
        )

    def write_rows(self, name: str, schema: Schema, rows: Iterable[Row],
                   overwrite: bool = False) -> DFSFile:
        """Materialize rows as a DFS file (the job-output path)."""
        if not name:
            raise StorageError("file name must be non-empty")
        if self.exists(name) and not overwrite:
            raise StorageError(f"file already exists: {name!r}")
        dfs_file = DFSFile(name, schema, list(rows), self.block_size_bytes)
        self._files[name] = dfs_file
        with self._accounting_lock:
            self.bytes_written += dfs_file.size_bytes
        return dfs_file

    def open(self, name: str) -> DFSFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        del self._files[name]

    def delete_if_exists(self, name: str) -> bool:
        """Delete ``name`` if present; returns whether it existed.

        Used by fault injection's node-loss events: losing an already
        re-materialized (or never-written) output is a no-op, not an
        error.
        """
        if name not in self._files:
            return False
        del self._files[name]
        return True

    # -- data-path operations ---------------------------------------------

    def read_split(self, split: Split) -> list[Row]:
        rows = self.open(split.file_name).split_rows(split)
        with self._accounting_lock:
            self.bytes_read += split.size_bytes
        return rows

    def read_all(self, name: str) -> list[Row]:
        dfs_file = self.open(name)
        with self._accounting_lock:
            self.bytes_read += dfs_file.size_bytes
        return list(dfs_file.rows)

    def charge_spill(self, bytes_written: int, bytes_read: int) -> None:
        """Account spill traffic (thread-safe; callable from task code)."""
        with self._accounting_lock:
            self.spill_bytes_written += bytes_written
            self.spill_bytes_read += bytes_read

    def file_size(self, name: str) -> int:
        return self.open(name).size_bytes

    def file_splits(self, name: str) -> list[Split]:
        return list(self.open(name).splits)
