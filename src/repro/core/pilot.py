"""Pilot runs: the PILR algorithm (paper Section 4, Algorithm 1).

For each base leaf of a join block (scan + local predicates/UDFs), a
map-only job runs over a sample of the relation until ``k`` output records
exist, and statistics over the output are collected and extrapolated to the
full relation. Two execution modes are reproduced:

* **PILR_ST** -- leaf jobs submitted one after another; each starts (at
  least) a first wave of map tasks over the relation's splits in file
  order, a ZooKeeper-backed global counter tracks emitted records, and no
  new task starts once the counter passes ``k`` (started tasks finish their
  whole block, avoiding the inspection paradox of Section 4.2);
* **PILR_MT** -- all leaf jobs submitted together, each over ``m/|R|``
  randomly reservoir-sampled splits, growing the sample on demand when
  ``k`` records are not reached. Its runtime depends only on the sample
  size, not on the relation size (Table 1).

Reuse (Section 4.1): statistics are looked up by leaf signature before any
job runs, and when a selective leaf consumes (almost) the whole relation the
pilot job is run to completion so its output file can replace the leaf in
the actual query execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.job import MapReduceJob, TaskContext
from repro.cluster.runtime import ClusterRuntime, DispatchGate
from repro.config import DynoConfig
from repro.data.table import Row
from repro.errors import PlanError
from repro.jaql.blocks import BlockLeaf, JoinBlock
from repro.stats.metastore import StatisticsMetastore
from repro.stats.statistics import TableStats
from repro.storage.dfs import Split

PILR_ST = "ST"
PILR_MT = "MT"


@dataclass
class PilotLeafOutcome:
    """What one leaf's pilot run produced."""

    signature: str
    reused: bool
    stats: TableStats
    #: DFS file holding the leaf's full output, when the pilot consumed the
    #: whole relation and the output is reusable for the real execution.
    #: Its rows are qualified with :attr:`alias`, so only the leaf under
    #: that alias may be substituted (self-joins share one signature).
    reusable_output: str | None = None
    alias: str = ""
    scanned_fraction: float = 0.0
    output_rows: int = 0


@dataclass
class PilotReport:
    """Aggregate result of the pilot runs of one join block."""

    mode: str
    outcomes: dict[str, PilotLeafOutcome] = field(default_factory=dict)
    simulated_seconds: float = 0.0
    jobs_run: int = 0

    def stats_by_signature(self) -> dict[str, TableStats]:
        return {sig: out.stats for sig, out in self.outcomes.items()}


def stats_columns_for_leaf(block: JoinBlock, leaf: BlockLeaf) -> list[str]:
    """Output columns worth collecting statistics on for one leaf.

    The paper collects statistics "only for the attributes that participate
    in join predicates" (Section 4.3); we also include columns referenced by
    the block's non-local predicates, plus *composite* columns for
    multi-column join keys (so partkey+suppkey style joins estimate on the
    distinct count of the pair rather than the product of the parts).
    """
    columns: set[str] = set()
    for condition in block.conditions:
        for ref in (condition.left, condition.right):
            if ref.alias in leaf.aliases:
                columns.add(ref.qualified)
    for predicate in block.non_local_predicates:
        if predicate.references() & leaf.aliases:
            columns.update(predicate_columns(predicate, leaf.aliases))
    columns.update(composite_join_columns(block, leaf.aliases))
    return sorted(columns)


def signature_stats_columns(block: JoinBlock, leaf: BlockLeaf) -> list[str]:
    """Statistics columns for one run shared across same-signature leaves.

    Leaves with the same signature (a self-joined table) share one pilot
    run / one statistics entry, so it must cover the union of the columns
    every such leaf needs, re-qualified under the alias that actually runs
    (consumers re-qualify back, see
    :func:`repro.stats.statistics.requalify_stats`).
    """
    from repro.stats.statistics import COMPOSITE_SEPARATOR, composite_parts

    signature = leaf.signature()
    alias = leaf.alias
    columns: set[str] = set()
    for peer in block.base_leaves():
        if peer.signature() != signature:
            continue
        for name in stats_columns_for_leaf(block, peer):
            requalified = []
            for part in composite_parts(name):
                _, _, column = part.partition(".")
                requalified.append(f"{alias}.{column}")
            columns.add(COMPOSITE_SEPARATOR.join(requalified))
    return sorted(columns)


def composite_join_columns(block: JoinBlock,
                           aliases: frozenset[str]) -> list[str]:
    """Composite statistics columns for joins leaving ``aliases``.

    Conditions crossing from ``aliases`` to the same peer leaf form one
    composite key on this side (see
    :func:`repro.stats.statistics.composite_name`).
    """
    from repro.stats.statistics import composite_name

    groups: dict[int, set[str]] = {}
    for condition in block.conditions:
        for ref, other in ((condition.left, condition.right),
                           (condition.right, condition.left)):
            if ref.alias in aliases and other.alias not in aliases:
                peer = id(block.leaf_for(other.alias))
                groups.setdefault(peer, set()).add(ref.qualified)
    return sorted(
        composite_name(names) for names in groups.values() if len(names) >= 2
    )


def predicate_columns(predicate, aliases: frozenset[str]) -> list[str]:
    """Qualified column names a predicate reads from the given aliases."""
    from repro.jaql.expr import And, ColumnRef, Comparison, Or, UdfPredicate

    names: list[str] = []
    if isinstance(predicate, (And, Or)):
        for part in predicate.parts:
            names.extend(predicate_columns(part, aliases))
    elif isinstance(predicate, Comparison):
        for ref in (predicate.left, predicate.right):
            if isinstance(ref, ColumnRef) and ref.alias in aliases:
                names.append(ref.qualified)
    elif isinstance(predicate, UdfPredicate):
        for ref in predicate.args:
            if ref.alias in aliases:
                names.append(ref.qualified)
    return names


class PilotRunner:
    """Runs PILR over the base leaves of a join block."""

    def __init__(self, runtime: ClusterRuntime, metastore: StatisticsMetastore,
                 config: DynoConfig):
        self.runtime = runtime
        self.metastore = metastore
        self.config = config
        self.dfs = runtime.dfs
        #: optional :class:`repro.feedback.FeedbackStore`; set by the
        #: driver when the workload feedback loop is enabled. Drives
        #: re-pilots (stale statistics are re-collected with a larger
        #: sample instead of silently reused).
        self.feedback = None

    # -- public --------------------------------------------------------------------

    def run(self, block: JoinBlock, mode: str = PILR_MT,
            reuse_statistics: bool = True) -> PilotReport:
        """Execute pilot runs for every base leaf lacking statistics."""
        if mode not in (PILR_ST, PILR_MT):
            raise PlanError(f"unknown pilot mode: {mode!r}")
        with self.runtime.tracer.span("pilot", block=block.name,
                                      mode=mode) as span:
            report = self._run(block, mode, reuse_statistics)
            span.set(
                jobs_run=report.jobs_run,
                reused=sum(1 for outcome in report.outcomes.values()
                           if outcome.reused),
                sim_s=round(report.simulated_seconds, 6),
            )
        metrics = self.runtime.metrics
        if metrics.enabled:
            if report.jobs_run:
                metrics.inc("pilot.jobs_run", report.jobs_run)
                metrics.observe("pilot.sim_s", report.simulated_seconds)
            reused = sum(1 for outcome in report.outcomes.values()
                         if outcome.reused)
            if reused:
                metrics.inc("pilot.reused", reused)
        return report

    def _run(self, block: JoinBlock, mode: str,
             reuse_statistics: bool) -> PilotReport:
        report = PilotReport(mode)
        tracer = self.runtime.tracer

        def skip(leaf: BlockLeaf, signature: str, stats: TableStats) -> None:
            """Record a metastore hit: the leaf's pilot run is skipped."""
            report.outcomes[signature] = PilotLeafOutcome(
                signature, reused=True, stats=stats
            )
            if tracer.enabled:
                tracer.event(
                    "pilot_skipped",
                    block=block.name,
                    signature=signature,
                    leaf=leaf.describe(),
                    estimated_rows=round(stats.row_count, 3),
                )

        pending: list[BlockLeaf] = []
        queued: set[str] = set()
        for leaf in block.base_leaves():
            signature = leaf.signature()
            if signature in report.outcomes or signature in queued:
                continue  # two leaves with identical table+predicates
            existing = self.metastore.get(signature) if reuse_statistics else None
            if (existing is not None and self.feedback is not None
                    and self.feedback.should_repilot(signature)):
                # Feedback flagged this signature's estimates as
                # persistently bad: re-pilot with the boosted sample
                # instead of reusing the stale entry.
                existing = None
            if existing is not None:
                skip(leaf, signature, existing)
                continue
            if not leaf.predicates:
                # Bare scans reuse plain table statistics when present
                # (Section 4.1: "if there are no predicates ... use the
                # existing statistics for R").
                bare = self.metastore.get(f"table:{leaf.source_name}|")
                if reuse_statistics and bare is not None:
                    skip(leaf, signature, bare)
                    continue
            pending.append(leaf)
            queued.add(signature)

        if not pending:
            return report

        jobs: list[MapReduceJob] = []
        gates: dict[str, DispatchGate | None] = {}
        dependencies: dict[str, list[str]] = {}
        leaf_of_job: dict[str, BlockLeaf] = {}
        previous_name: str | None = None
        for index, leaf in enumerate(pending):
            job, gate = self._leaf_job(block, leaf, index, len(pending), mode)
            jobs.append(job)
            gates[job.name] = gate
            leaf_of_job[job.name] = leaf
            if mode == PILR_ST and previous_name is not None:
                dependencies[job.name] = [previous_name]
            previous_name = job.name

        # Pilots run fault-free: they precede the real query, and keeping
        # their leaf statistics deterministic means a faulted run starts
        # from the same first plan as its fault-free twin (the property
        # the differential oracle in tests/oracle.py checks).
        with self.runtime.suspended_faults():
            batch = self.runtime.execute_batch(jobs, dependencies, gates)
        report.simulated_seconds = batch.makespan
        report.jobs_run = len(jobs)

        tracer = self.runtime.tracer
        for job in jobs:
            result = batch[job.name]
            leaf = leaf_of_job[job.name]
            outcome = self._extrapolate(leaf, result)
            report.outcomes[outcome.signature] = outcome
            self.metastore.put(outcome.signature, outcome.stats)
            if self.feedback is not None:
                self.feedback.repilot_done(outcome.signature)
            if tracer.enabled:
                tracer.event(
                    "pilot.leaf",
                    job=job.name,
                    signature=outcome.signature,
                    scanned_fraction=round(outcome.scanned_fraction, 6),
                    sample_rows=outcome.output_rows,
                    estimated_rows=round(outcome.stats.row_count, 3),
                    estimated_bytes=round(outcome.stats.size_bytes, 3),
                    reusable=outcome.reusable_output is not None,
                )
        return report

    # -- job construction -----------------------------------------------------------

    def _leaf_job(self, block: JoinBlock, leaf: BlockLeaf, index: int,
                  relation_count: int,
                  mode: str) -> tuple[MapReduceJob, DispatchGate]:
        input_file = leaf.source_name
        all_splits = self.dfs.file_splits(input_file)
        counter = self.runtime.coordination.counter(
            f"pilr/{block.name}/{index}"
        )
        counter.value = 0
        k_records = self.config.pilot.k_records
        if self.feedback is not None:
            boost = self.feedback.pilot_boost(leaf.signature())
            if boost > 1.0:
                k_records = int(round(k_records * boost))
        cpu_per_row = leaf.cpu_seconds_per_row

        qualify = leaf.qualify_and_filter

        def mapper(context: TaskContext, source: str,
                   rows: list[Row]) -> None:
            if cpu_per_row:
                context.charge_cpu(cpu_per_row * len(rows))
            qualified = [out for out in map(qualify, rows) if out is not None]
            if qualified:
                context.emit_all(None, qualified)
                # One shared-counter update per split, not per record: the
                # dispatch gate only reads the counter between splits, so
                # early-stop decisions are unchanged.
                counter.increment(len(qualified))

        total_map_slots = self.config.cluster.total_map_slots
        threshold = self.config.pilot.reuse_completion_threshold
        total_splits = len(all_splits)

        if mode == PILR_ST:
            # Natural split order; first wave always runs, then the global
            # counter gates further dispatch; near-complete scans finish.
            splits = all_splits
            first_wave = min(total_map_slots, total_splits)

            def gate(started: int) -> bool:
                if started < first_wave:
                    return True
                if counter.value < k_records:
                    return True
                return started / total_splits >= threshold
        else:
            # Reservoir-sample m/|R| splits; the remaining splits follow in
            # random order so the sample can grow on demand (Section 4.2).
            rng = random.Random(self.config.pilot.seed + index)
            initial_count = min(
                max(1, total_map_slots // max(1, relation_count)),
                total_splits,
            )
            sampled = _reservoir_sample(all_splits, initial_count, rng)
            sampled_set = {(s.file_name, s.index) for s in sampled}
            remainder = [s for s in all_splits
                         if (s.file_name, s.index) not in sampled_set]
            rng.shuffle(remainder)
            splits = sampled + remainder

            def gate(started: int) -> bool:
                if started < initial_count:
                    return True
                if counter.value < k_records:
                    return True
                return started / total_splits >= threshold

        job = MapReduceJob(
            name=f"{block.name}.pilr{index}",
            inputs=[input_file],
            mapper=mapper,
            output_name=f"{block.name}.pilr{index}.out",
            output_schema=self.dfs.open(input_file).schema,
            splits=splits,
            stats_columns=self._columns_for_signature(block, leaf),
            description=f"pilot run for {leaf.describe()}",
        )
        return job, gate

    def _columns_for_signature(self, block: JoinBlock,
                               leaf: BlockLeaf) -> list[str]:
        return signature_stats_columns(block, leaf)

    # -- extrapolation (Section 4.3) ---------------------------------------------------

    def _extrapolate(self, leaf: BlockLeaf, result) -> PilotLeafOutcome:
        signature = leaf.signature()
        sample_stats = result.collected_stats
        consumed_bytes = result.counters.get("map", "MAP_INPUT_BYTES")
        file_bytes = self.dfs.file_size(leaf.source_name)
        fraction = (consumed_bytes / file_bytes) if file_bytes else 1.0
        fraction = min(1.0, max(fraction, 1e-9))

        if sample_stats is None:
            from repro.stats.statistics import TableStats as _TS

            sample_stats = _TS(float(result.output_rows),
                               float(result.output_bytes))

        if fraction >= 1.0:
            stats = TableStats(
                sample_stats.row_count,
                sample_stats.size_bytes,
                dict(sample_stats.columns),
                exact=True,
            )
            reusable = result.output_name
        else:
            estimated_rows = sample_stats.row_count / fraction
            estimated_bytes = sample_stats.size_bytes / fraction
            stats = sample_stats.scaled_to(estimated_rows, estimated_bytes)
            reusable = None

        return PilotLeafOutcome(
            signature=signature,
            reused=False,
            stats=stats,
            reusable_output=reusable,
            alias=leaf.alias,
            scanned_fraction=result.scanned_fraction,
            output_rows=result.output_rows,
        )


def _reservoir_sample(items: list[Split], count: int,
                      rng: random.Random) -> list[Split]:
    """Classic reservoir sampling (Algorithm 1, line 7)."""
    reservoir: list[Split] = []
    for index, item in enumerate(items):
        if index < count:
            reservoir.append(item)
            continue
        slot = rng.randint(0, index)
        if slot < count:
            reservoir[slot] = item
    return reservoir
