"""Execution strategies: choosing which leaf jobs to run (Section 5.3).

A strategy looks at the *ready* (leaf) jobs of the compiled plan and picks
which to submit in this iteration. Two dimensions matter (paper):

* **priority** -- by estimated *cost* (reach a re-optimization point fast)
  or by *uncertainty* (the number of joins in the job: join-size estimation
  error grows exponentially with the number of joins [27], so running the
  most uncertain job first yields the most informative statistics);
* **parallelism** -- how many jobs to run at once. More parallelism uses
  the cluster better but removes re-optimization points (Figure 5's
  central trade-off: UNC-1 wins for Q7/Q8' despite lower utilization).

The SIMPLE_* strategies drive DYNOPT-SIMPLE (no re-optimization): SO runs
one job at a time, MO overlaps every ready job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.jaql.compiler import CompiledJob


@dataclass(frozen=True)
class ExecutionStrategy:
    """Deterministic job picker: named (priority, parallelism) combination."""

    name: str
    #: "cost", "uncertainty", or "fifo" (compilation order).
    priority: str
    #: how many jobs to submit per iteration; None = all ready jobs.
    parallelism: int | None

    def choose(self, ready: list[CompiledJob]) -> list[CompiledJob]:
        if not ready:
            return []
        ordered = self._order(ready)
        if self.parallelism is None:
            return ordered
        return ordered[: self.parallelism]

    def _order(self, ready: list[CompiledJob]) -> list[CompiledJob]:
        if self.priority == "fifo":
            return list(ready)
        if self.priority == "cost":
            return sorted(ready, key=lambda j: (j.estimated_cost, j.name))
        if self.priority == "uncertainty":
            # Most joins first; cheapest first among equally uncertain jobs
            # ("the two cheapest most uncertain leaf jobs", Section 6.3).
            return sorted(
                ready, key=lambda j: (-j.join_count, j.estimated_cost, j.name)
            )
        raise PlanError(f"unknown strategy priority: {self.priority!r}")


#: The strategy set evaluated in Figure 5.
STRATEGIES: dict[str, ExecutionStrategy] = {
    "UNC-1": ExecutionStrategy("UNC-1", "uncertainty", 1),
    "UNC-2": ExecutionStrategy("UNC-2", "uncertainty", 2),
    "CHEAP-1": ExecutionStrategy("CHEAP-1", "cost", 1),
    "CHEAP-2": ExecutionStrategy("CHEAP-2", "cost", 2),
    "SIMPLE_SO": ExecutionStrategy("SIMPLE_SO", "fifo", 1),
    "SIMPLE_MO": ExecutionStrategy("SIMPLE_MO", "fifo", None),
    #: all-at-once under the *dynamic* executor: every ready job of the
    #: current plan is submitted each round, re-optimizing only between
    #: rounds -- maximum utilization, fewest re-optimization points (the
    #: far end of Figure 5's trade-off, and the widest batches the fault
    #: oracle can stress recovery with).
    "ALL": ExecutionStrategy("ALL", "fifo", None),
}


def strategy_named(name: str) -> ExecutionStrategy:
    try:
        return STRATEGIES[name]
    except KeyError:
        raise PlanError(
            f"unknown execution strategy {name!r}; "
            f"choose one of {sorted(STRATEGIES)}"
        ) from None
