"""Dynamic join operator (paper Section 8, future work).

    "We are also planning to create a new dynamic join operator that
    switches between a broadcast and repartition join, without waiting for
    the current job to finish."

This module prototypes that operator at plan granularity: a fixed physical
plan executes join by join, and immediately before each *repartition* join
launches, the operator inspects the **actual** sizes of its materialized
inputs. When one side really fits in task memory -- even though the
optimizer's estimate said otherwise -- the join switches to a broadcast
join on the fly, paying a small switch penalty instead of a full shuffle.

Unlike DYNOPT this never re-optimizes: join order and every other method
choice stay fixed. It is the cheapest possible form of runtime adaptivity,
and the ablation benchmark (``benchmarks/bench_ablation_dynamic_join.py``)
measures how much of DYNOPT's benefit this alone recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.runtime import ClusterRuntime
from repro.config import DynoConfig
from repro.errors import PlanError
from repro.jaql.blocks import SOURCE_INTERMEDIATE, BlockLeaf, JoinBlock
from repro.jaql.compiler import PlanCompiler
from repro.optimizer.plans import (
    BROADCAST,
    REPARTITION,
    PhysJoin,
    PhysLeaf,
    PhysicalNode,
    plan_signature,
)

#: Simulated cost of tearing down the planned shuffle and re-launching the
#: join as a map-only job (the paper's operator would avoid even this).
SWITCH_PENALTY_SECONDS = 2.0


@dataclass
class DynamicJoinResult:
    """Outcome of executing one plan with dynamic join switching."""

    output_file: str = ""
    execution_seconds: float = 0.0
    switches: int = 0
    jobs_run: int = 0
    plan_signatures: list[str] = field(default_factory=list)


class DynamicJoinExecutor:
    """Executes a fixed plan join-by-join with runtime method switching."""

    def __init__(self, runtime: ClusterRuntime, config: DynoConfig):
        self.runtime = runtime
        self.config = config
        self.dfs = runtime.dfs

    def execute_plan(self, block: JoinBlock,
                     plan: PhysicalNode) -> DynamicJoinResult:
        result = DynamicJoinResult()
        step = 0
        while True:
            result.plan_signatures.append(plan_signature(plan))
            if isinstance(plan, PhysLeaf):
                plan, block = self._finish_leaf(plan, block, result, step)
                return result

            target = _lowest_ready_join(plan)
            target, plan, block = self._materialize_filtered_sides(
                target, plan, block, result, step
            )
            target = self._maybe_switch(target, result)
            compiler = PlanCompiler(self.dfs, self.config,
                                    f"{block.name}.dj{step}")
            graph = compiler.compile_block(target)
            for compiled in graph.jobs:
                batch = self.runtime.execute_batch([compiled.job])
                result.execution_seconds += batch.makespan
                result.jobs_run += 1
            output = graph.final_output
            out_file = self.dfs.open(output)
            new_leaf = PhysLeaf(
                aliases=target.aliases,
                est_rows=float(out_file.row_count),
                est_bytes=float(out_file.size_bytes),
                cost=0.0,
                leaf=BlockLeaf(target.aliases, SOURCE_INTERMEDIATE, output),
            )
            block = block.substitute(target.aliases, output,
                                     target.applied_predicates)
            plan = _replace_subtree(plan, target.aliases, new_leaf)
            step += 1

    # -- pieces -----------------------------------------------------------------

    def _finish_leaf(self, leaf: PhysLeaf, block: JoinBlock,
                     result: DynamicJoinResult, step: int):
        """Single-leaf plan left: materialize it if still a base scan."""
        if not leaf.leaf.is_base:
            result.output_file = leaf.leaf.source_name
            return leaf, block
        compiler = PlanCompiler(self.dfs, self.config,
                                f"{block.name}.dj{step}")
        graph = compiler.compile_block(leaf)
        for compiled in graph.jobs:
            batch = self.runtime.execute_batch([compiled.job])
            result.execution_seconds += batch.makespan
            result.jobs_run += 1
        result.output_file = graph.final_output
        return leaf, block

    def _materialize_filtered_sides(self, join: PhysJoin,
                                    plan: PhysicalNode, block: JoinBlock,
                                    result: DynamicJoinResult, step: int):
        """Run the filter scans of a repartition join's inputs up front.

        A repartition join would scan (and filter) both inputs anyway; by
        materializing filtered base leaves first, the operator *observes*
        their true size before committing to the shuffle -- the essence of
        switching "without waiting for the current job to finish".
        """
        if join.method != REPARTITION:
            return join, plan, block
        for index, child in enumerate((join.left, join.right)):
            if not (isinstance(child, PhysLeaf) and child.leaf.is_base
                    and child.leaf.predicates):
                continue
            compiler = PlanCompiler(self.dfs, self.config,
                                    f"{block.name}.djf{step}_{index}")
            graph = compiler.compile_block(child)
            for compiled in graph.jobs:
                batch = self.runtime.execute_batch([compiled.job])
                result.execution_seconds += batch.makespan
                result.jobs_run += 1
            out_file = self.dfs.open(graph.final_output)
            new_leaf = PhysLeaf(
                aliases=child.aliases,
                est_rows=float(out_file.row_count),
                est_bytes=float(out_file.size_bytes),
                cost=0.0,
                leaf=BlockLeaf(child.aliases, SOURCE_INTERMEDIATE,
                               graph.final_output),
            )
            block = block.substitute(child.aliases, graph.final_output, ())
            plan = _replace_subtree(plan, child.aliases, new_leaf)
            join = replace(join, **{"left" if index == 0 else "right":
                                    new_leaf})
        return join, plan, block

    def _actual_bytes(self, node: PhysicalNode) -> float | None:
        """True materialized size, when knowable before launching the job.

        Intermediate leaves are materialized files (exact); base leaves
        without predicates are the file itself; filtered base leaves are
        unknown until executed (return None)."""
        if not isinstance(node, PhysLeaf):
            return None
        if not node.leaf.is_base:
            return float(self.dfs.file_size(node.leaf.source_name))
        if node.leaf.predicates:
            return None
        return float(self.dfs.file_size(node.leaf.source_name))

    def _maybe_switch(self, join: PhysJoin,
                      result: DynamicJoinResult) -> PhysJoin:
        if join.method != REPARTITION:
            return join
        budget = self.config.cluster.task_memory_bytes
        left_bytes = self._actual_bytes(join.left)
        right_bytes = self._actual_bytes(join.right)
        candidates = []
        if right_bytes is not None and right_bytes <= budget:
            candidates.append((right_bytes, join.left, join.right))
        if left_bytes is not None and left_bytes <= budget:
            candidates.append((left_bytes, join.right, join.left))
        if not candidates:
            return join
        _, probe, build = min(candidates, key=lambda item: item[0])
        result.switches += 1
        result.execution_seconds += SWITCH_PENALTY_SECONDS
        return replace(join, method=BROADCAST, left=probe, right=build,
                       chained=False)


def _lowest_ready_join(plan: PhysicalNode) -> PhysJoin:
    """The deepest join whose inputs are both leaves (always exists)."""
    if isinstance(plan, PhysLeaf):
        raise PlanError("plan has no joins")
    assert isinstance(plan, PhysJoin)
    for child in (plan.left, plan.right):
        if isinstance(child, PhysJoin):
            return _lowest_ready_join(child)
    return plan


def _replace_subtree(plan: PhysicalNode, aliases: frozenset[str],
                     replacement: PhysLeaf) -> PhysicalNode:
    if plan.aliases == aliases:
        return replacement
    if isinstance(plan, PhysLeaf):
        return plan
    assert isinstance(plan, PhysJoin)
    return replace(
        plan,
        left=_replace_subtree(plan.left, aliases, replacement),
        right=_replace_subtree(plan.right, aliases, replacement),
    )
