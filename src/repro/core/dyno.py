"""DYNO system facade (paper Section 3, Figure 1).

``Dyno`` owns the whole stack: the simulated DFS holding the base tables,
the cluster runtime, the statistics metastore, the UDF registry, and the
DYNOPT executor. A query goes through the paper's steps:

1. parse (or accept a built :class:`QuerySpec`), apply heuristic rewrites
   (filter/UDF push-down);
2. extract the join block and the post-join stages;
3. pilot runs over the block's base leaves;
4. DYNOPT (or DYNOPT-SIMPLE) execution of the join block;
5. post-join stages: GROUP BY as one more MapReduce job; ORDER BY and the
   final projection evaluated client-side (Jaql runs non-parallelizable
   expressions locally, Section 2.1);
6. results returned to the client.

Multi-block queries (e.g. TPC-H Q2 with its aggregation subquery) run as a
sequence of single-block queries whose outputs register as new base tables,
matching Section 5.1 ("a block can be executed only after all blocks it
depends on have already been executed").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.coordination import CoordinationService
from repro.cluster.runtime import ClusterRuntime
from repro.config import DEFAULT_CONFIG, DynoConfig
from repro.data.schema import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    FieldType,
    Schema,
)
from repro.data.table import Row, Table
from repro.errors import PlanError
from repro.jaql.blocks import ExtractedQuery, extract_query
from repro.jaql.compiler import PlanCompiler
from repro.jaql.expr import GroupBy, OrderBy, Project, QuerySpec
from repro.jaql.functions import UdfRegistry, default_registry
from repro.jaql.interpreter import order_key
from repro.jaql.parser import SqlParser
from repro.jaql.rewrites import push_down_filters
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.stats.metastore import StatisticsMetastore
from repro.core.dynopt import (
    BlockExecutionResult,
    DynoptExecutor,
    MODE_DYNOPT,
)


@dataclass
class QueryExecution:
    """Result and cost breakdown of one executed query."""

    query_name: str
    rows: list[Row]
    block_results: list[BlockExecutionResult] = field(default_factory=list)
    stage_seconds: float = 0.0

    @property
    def pilot_seconds(self) -> float:
        return sum(result.pilot_seconds for result in self.block_results)

    @property
    def optimizer_seconds(self) -> float:
        return sum(result.optimizer_seconds for result in self.block_results)

    @property
    def execution_seconds(self) -> float:
        return (sum(result.execution_seconds for result in self.block_results)
                + self.stage_seconds)

    @property
    def total_seconds(self) -> float:
        return self.pilot_seconds + self.optimizer_seconds + self.execution_seconds

    @property
    def plans(self):
        collected = []
        for result in self.block_results:
            collected.extend(result.plans)
        return collected


def infer_schema(rows: list[Row]) -> Schema:
    """Best-effort schema inference for intermediate tables."""
    fields: dict[str, FieldType] = {}
    for row in rows:
        for name, value in row.items():
            if name in fields:
                continue
            if isinstance(value, bool):
                fields[name] = BOOL
            elif isinstance(value, int):
                fields[name] = INT
            elif isinstance(value, float):
                fields[name] = FLOAT
            elif isinstance(value, str):
                fields[name] = STRING
    return Schema(tuple(fields.items()))


class Dyno:
    """End-to-end query execution over the simulated platform."""

    def __init__(self, tables: dict[str, Table],
                 config: DynoConfig = DEFAULT_CONFIG,
                 udfs: UdfRegistry | None = None,
                 metastore: StatisticsMetastore | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 plan_cache=None,
                 feedback=None):
        from repro.storage.dfs import DistributedFileSystem

        self.config = config
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics or NULL_METRICS
        self.dfs = DistributedFileSystem(config.cluster.block_size_bytes)
        # The metastore must exist before the first register_table call:
        # registration bumps the table's data epoch (the result cache keys
        # off it -- see repro.stats.metastore).
        self.metastore = metastore or StatisticsMetastore()
        self.tables: dict[str, Table] = {}
        for name, table in tables.items():
            self.register_table(name, table)
        self.coordination = CoordinationService()
        self.runtime = ClusterRuntime(self.dfs, config, self.coordination,
                                      tracer=self.tracer,
                                      metrics=self.metrics)
        self.udfs = udfs or default_registry()
        self.executor = DynoptExecutor(self.runtime, self.metastore,
                                       self.config)
        #: optional cross-query plan cache (see repro.service.plan_cache);
        #: its invalidation listener keys off metastore updates.
        self.plan_cache = plan_cache
        if plan_cache is not None:
            self.executor.plan_cache = plan_cache
            self.metastore.subscribe(plan_cache.on_stats_update)
        #: optional workload feedback store (see repro.feedback); shared
        #: across queries -- and across Dyno instances in the service --
        #: so estimate audits from one run correct the next.
        self.feedback = feedback
        if feedback is not None:
            feedback.bind_metrics(self.metrics)
            self.executor.feedback = feedback
            self.executor.pilot_runner.feedback = feedback

    # -- catalog ------------------------------------------------------------------------

    def register_table(self, name: str, table: Table) -> None:
        """Publish ``table`` under ``name`` (overwriting any prior data).

        Every registration bumps the metastore's epoch for ``name``:
        statistics are lossy, so a data change that happens to freeze to
        identical synopses is invisible to statistics fingerprints -- the
        epoch is what keeps the result cache from serving rows computed
        over the previous contents (see repro.stats.metastore).
        """
        self.tables[name] = table
        self.dfs.write_table(table, name=name, overwrite=True)
        self.metastore.bump_table_epoch(name)

    # -- query preparation ----------------------------------------------------------------

    def parse(self, sql: str, name: str = "query") -> QuerySpec:
        return SqlParser(self.udfs).parse(sql, name)

    def prepare(self, query: QuerySpec | str,
                name: str = "query") -> ExtractedQuery:
        """Rewrite (push-down) and decompose into block + stages."""
        spec = self.parse(query, name) if isinstance(query, str) else query
        pushed = QuerySpec(spec.name, push_down_filters(spec.root),
                           spec.description)
        return extract_query(pushed)

    # -- execution -----------------------------------------------------------------------

    def execute(self, query: QuerySpec | str, mode: str = MODE_DYNOPT,
                strategy: str = "UNC-1", pilot_mode: str = "MT",
                run_pilots: bool = True, reuse_statistics: bool = True,
                leaf_stats_override=None, collect_column_stats: bool = True,
                name: str = "query") -> QueryExecution:
        wall_start = time.perf_counter() if self.metrics.enabled else 0.0
        with self.tracer.span("query", name=name, mode=mode,
                              strategy=str(strategy)) as span:
            extracted = self.prepare(query, name)
            block_result = self.executor.execute_block(
                extracted.block,
                mode=mode,
                strategy=strategy,
                pilot_mode=pilot_mode,
                run_pilots=run_pilots,
                reuse_statistics=reuse_statistics,
                leaf_stats_override=leaf_stats_override,
                collect_column_stats=collect_column_stats,
            )
            execution = QueryExecution(extracted.spec.name, [],
                                       [block_result])
            execution.rows = self._run_stages(
                extracted, block_result.output_file, execution
            )
            span.set(rows=len(execution.rows),
                     sim_total_s=round(execution.total_seconds, 6))
        if self.metrics.enabled:
            metrics = self.metrics
            metrics.inc("queries.executed")
            metrics.observe("query.driver_wall_s",
                            time.perf_counter() - wall_start)
            metrics.observe("query.sim_pilot_s", execution.pilot_seconds)
            metrics.observe("query.sim_optimizer_s",
                            execution.optimizer_seconds)
            metrics.observe("query.sim_execution_s",
                            execution.execution_seconds)
        return execution

    def explain(self, query: QuerySpec | str, run_pilots: bool = True,
                name: str = "query") -> str:
        """Plan a query and return a human-readable report, no execution.

        With ``run_pilots`` the leaf statistics come from pilot runs (which
        do execute sample jobs, like the real system's EXPLAIN would after
        step 3 of Figure 1); otherwise ground-truth oracle statistics are
        used.
        """
        from repro.jaql.compiler import PlanCompiler
        from repro.optimizer.plans import render_plan
        from repro.optimizer.search import JoinOptimizer

        extracted = self.prepare(query, name)
        block = extracted.block
        lines = [block.describe(), ""]

        if run_pilots:
            report = self.executor.pilot_runner.run(block)
            block = self.executor._apply_reusable_outputs(block, report)
            lines.append(
                f"pilot runs: {report.jobs_run} job(s), "
                f"{report.simulated_seconds:.1f}s simulated"
            )
            leaf_stats = self.executor._leaf_stats(block)
        else:
            from repro.core.baselines import oracle_leaf_stats

            leaf_stats = oracle_leaf_stats(self.tables, block)
            lines.append("statistics: oracle (full scans)")
        for leaf in block.leaves:
            stats = leaf_stats[leaf.signature()]
            lines.append(
                f"  {leaf.describe()}: ~{stats.row_count:.0f} rows, "
                f"~{stats.size_bytes:.0f} bytes"
            )

        result = JoinOptimizer(block, leaf_stats,
                               self.config.optimizer).optimize()
        lines += ["", f"best plan (estimated cost {result.cost:.0f}, "
                      f"{result.plans_considered} candidates):",
                  render_plan(result.plan, show_estimates=True)]

        graph = PlanCompiler(self.dfs, self.config,
                             f"{block.name}.explain").compile_block(
            result.plan
        )
        lines += ["", "job graph:", graph.describe()]
        for stage in extracted.stages:
            lines.append(f"then: {type(stage).__name__.lower()} stage")
        return "\n".join(lines)

    def save_statistics(self, path) -> None:
        """Persist the statistics metastore (Section 4.1's 'file')."""
        self.metastore.save(path)

    def load_statistics(self, path) -> int:
        """Merge statistics persisted by an earlier session; returns count."""
        loaded = StatisticsMetastore.load(path)
        count = 0
        for signature in loaded:
            self.metastore.put(signature, loaded.get(signature))
            count += 1
        return count

    def execute_with_plan(self, query: QuerySpec | str, plan,
                          name: str = "query") -> QueryExecution:
        """Execute a caller-provided physical plan (baseline replay path).

        The plan's join order/methods are taken as-is -- the paper's
        "hand-written" and "hand-coded" plans; post-join stages still run.
        """
        extracted = self.prepare(query, name)
        block_result = self.executor.execute_physical_plan(
            extracted.block, plan, label="static"
        )
        execution = QueryExecution(extracted.spec.name, [], [block_result])
        execution.rows = self._run_stages(extracted, block_result.output_file,
                                          execution)
        return execution

    def execute_multi(self, stages: list[tuple[QuerySpec | str, str | None]],
                      **execute_kwargs) -> QueryExecution:
        """Execute dependent blocks in sequence (Section 5.1).

        Each element is ``(query, output_table_name)``; intermediate results
        register as base tables for later stages. The final stage must have
        ``None`` as its output name; its rows are returned.
        """
        if not stages:
            raise PlanError("execute_multi requires at least one stage")
        combined: QueryExecution | None = None
        for position, (query, output_name) in enumerate(stages):
            execution = self.execute(
                query, name=f"stage{position}", **execute_kwargs
            )
            if combined is None:
                combined = QueryExecution(execution.query_name, [])
            combined.block_results.extend(execution.block_results)
            combined.stage_seconds += execution.stage_seconds
            is_last = position == len(stages) - 1
            if is_last:
                if output_name is not None:
                    raise PlanError("final stage must not name an output")
                combined.rows = execution.rows
            else:
                if output_name is None:
                    raise PlanError(
                        f"intermediate stage {position} needs an output name"
                    )
                table = Table(output_name, infer_schema(execution.rows),
                              execution.rows)
                self.register_table(output_name, table)
        assert combined is not None
        return combined

    # -- post-join stages --------------------------------------------------------------------

    def _run_stages(self, extracted: ExtractedQuery, block_output: str,
                    execution: QueryExecution) -> list[Row]:
        current_file = block_output
        rows: list[Row] | None = None
        for stage in extracted.stages:
            if self.tracer.enabled:
                self.tracer.event("stage",
                                  kind=type(stage).__name__.lower(),
                                  query=extracted.spec.name)
            if isinstance(stage, GroupBy):
                if rows is not None:
                    raise PlanError(
                        "GROUP BY after a client-side stage is unsupported"
                    )
                compiler = PlanCompiler(
                    self.dfs, self.config,
                    f"{extracted.spec.name}.stage",
                )
                compiled = compiler.compile_group_by(current_file, stage)
                batch = self._execute_stage_job(compiled.job, execution)
                execution.stage_seconds += batch.makespan
                current_file = compiled.job.output_name
            elif isinstance(stage, OrderBy):
                rows = self._client_rows(current_file, rows)
                rows = sorted(
                    rows,
                    key=lambda row: tuple(
                        order_key(ref.evaluate(row)) for ref in stage.keys
                    ),
                    reverse=stage.descending,
                )
                if stage.limit is not None:
                    rows = rows[: stage.limit]
            elif isinstance(stage, Project):
                rows = self._client_rows(current_file, rows)
                rows = [stage.project_row(row) for row in rows]
            else:  # pragma: no cover - extract_query only yields these
                raise PlanError(
                    f"unsupported stage {type(stage).__name__}"
                )
        return self._client_rows(current_file, rows)

    def _execute_stage_job(self, job, execution: QueryExecution):
        """Run one post-join stage job, retrying injected permanent kills.

        Stage jobs have no alternative plan to fall back to, so a
        ``TaskRetriesExhaustedError`` under fault injection is handled by
        resubmitting the job (a fresh incarnation draws fresh faults), up
        to the cluster's ``max_job_attempts``.
        """
        from repro.errors import TaskRetriesExhaustedError
        from repro.stats.collector import stats_scope

        attempts = 0
        while True:
            try:
                return self.runtime.execute_batch([job])
            except TaskRetriesExhaustedError:
                attempts += 1
                if attempts >= self.config.cluster.max_job_attempts:
                    raise
                self.runtime.coordination.clear_scope(stats_scope(job.name))

    def _client_rows(self, current_file: str,
                     rows: list[Row] | None) -> list[Row]:
        if rows is not None:
            return rows
        return self.dfs.read_all(current_file)
