"""DYNOPT: dynamic plan execution with re-optimization (Alg. 2, Section 5).

Each iteration: optimize the remaining join block with the cost-based
optimizer, compile the best plan to a MapReduce job graph, execute only the
leaf jobs picked by the execution strategy, collect statistics over their
materialized outputs, substitute the executed sub-plans by intermediate
leaves, and loop until the block is fully executed.

``mode="simple"`` gives DYNOPT-SIMPLE (Section 6.1): pilot runs feed one
optimization, the resulting plan executes to completion with no statistics
collection and no re-optimization -- either one job at a time (SIMPLE_SO)
or with every ready job overlapped (SIMPLE_MO).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.job import MapReduceJob
from repro.cluster.runtime import ClusterRuntime, JobResult
from repro.config import DynoConfig
from repro.errors import (
    BroadcastBuildOverflowError,
    JobFaultInjectedError,
    PlanError,
    StorageError,
    TaskRetriesExhaustedError,
)
from repro.feedback.keys import (
    BlockFeedbackContext,
    block_feedback_context,
    canonical_block_key,
    group_key,
)
from repro.jaql.blocks import JoinBlock
from repro.jaql.compiler import CompiledJob, PlanCompiler
from repro.obs.metrics import q_error
from repro.optimizer.plans import PhysicalNode, plan_signature, render_plan
from repro.optimizer.search import JoinOptimizer
from repro.stats.collector import stats_scope
from repro.stats.metastore import StatisticsMetastore
from repro.stats.statistics import TableStats
from repro.core.pilot import (
    PilotReport,
    PilotRunner,
    composite_join_columns,
    predicate_columns,
)
from repro.core.strategies import ExecutionStrategy, strategy_named

MODE_DYNOPT = "dynopt"
MODE_SIMPLE = "simple"

#: failures the dynamic loop treats as *permanent* for the failing plan:
#: the job cannot succeed as compiled, so the executor replans around it
#: (Section 1's "route around the failure" argument) instead of aborting.
PERMANENT_JOB_FAILURES = (
    TaskRetriesExhaustedError,
    BroadcastBuildOverflowError,
    JobFaultInjectedError,
)


@dataclass
class _RecoveryState:
    """Per-block recovery bookkeeping for the dynamic executor."""

    #: alias sets whose broadcast join failed permanently; fed back into
    #: the optimizer so replanning falls back to repartition joins.
    banned_broadcast: frozenset = frozenset()
    #: replans consumed against ``DynoConfig.max_recovery_replans``.
    replans: int = 0
    #: materialized output -> the job that produced it. Node-loss recovery
    #: re-runs exactly this sub-plan (transitively through lost inputs).
    provenance: dict[str, MapReduceJob] = field(default_factory=dict)


@dataclass
class IterationRecord:
    """One optimize-execute round."""

    index: int
    plan_signature: str
    plan_text: str
    estimated_cost: float
    jobs_executed: list[str]
    makespan_seconds: float
    optimizer_seconds: float
    collected_statistics: bool
    #: output records that passed through statistics collectors this
    #: iteration (drives the Figure 4 stats-collection overhead report).
    stats_records: int = 0


@dataclass
class BlockExecutionResult:
    """Everything measured while executing one join block."""

    block_name: str
    mode: str
    output_file: str = ""
    iterations: list[IterationRecord] = field(default_factory=list)
    plans: list[PhysicalNode] = field(default_factory=list)
    pilot: PilotReport | None = None
    #: simulated time components (seconds).
    pilot_seconds: float = 0.0
    optimizer_seconds: float = 0.0
    execution_seconds: float = 0.0
    #: --- fault recovery bookkeeping (empty on fault-free runs) ---
    #: jobs re-executed because a node loss deleted their output.
    recovered_jobs: list[str] = field(default_factory=list)
    #: materialized outputs deleted by injected node-loss events.
    lost_outputs: list[str] = field(default_factory=list)
    #: permanent job failures the executor replanned around.
    replanned_failures: list[str] = field(default_factory=list)
    #: mid-job replan triggers that fired: the estimate audit's q-error
    #: crossed ``DynoConfig.midjob_qerror_threshold`` while jobs of the
    #: current graph were still pending, forcing a re-optimization.
    midjob_replans: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.pilot_seconds + self.optimizer_seconds + self.execution_seconds

    @property
    def reoptimization_count(self) -> int:
        """Optimizer invocations beyond the first."""
        return max(0, len(self.iterations) - 1)

    @property
    def plan_changes(self) -> int:
        """How many re-optimizations actually changed the plan shape."""
        changes = 0
        for before, after in zip(self.iterations, self.iterations[1:]):
            if before.plan_signature != after.plan_signature:
                changes += 1
        return changes


class DynoptExecutor:
    """Executes join blocks under DYNOPT or DYNOPT-SIMPLE."""

    def __init__(self, runtime: ClusterRuntime,
                 metastore: StatisticsMetastore, config: DynoConfig):
        self.runtime = runtime
        self.metastore = metastore
        self.config = config
        self.tracer = runtime.tracer
        self.metrics = runtime.metrics
        self.pilot_runner = PilotRunner(runtime, metastore, config)
        #: optional cross-query plan cache, installed by the service layer
        #: (see :mod:`repro.service.plan_cache`). None = always optimize.
        self.plan_cache = None
        #: optional workload feedback store (see :mod:`repro.feedback`),
        #: installed by :class:`repro.core.dyno.Dyno`. None = no learning:
        #: estimates, plans and pilot sizing match the paper's behaviour.
        self.feedback = None

    # -- public ---------------------------------------------------------------------

    def execute_block(
        self,
        block: JoinBlock,
        mode: str = MODE_DYNOPT,
        strategy: ExecutionStrategy | str = "UNC-1",
        pilot_mode: str = "MT",
        run_pilots: bool = True,
        reuse_statistics: bool = True,
        leaf_stats_override: dict[str, TableStats] | None = None,
        collect_column_stats: bool = True,
    ) -> BlockExecutionResult:
        """Run one join block to completion; returns timings and plans.

        ``leaf_stats_override`` bypasses pilot runs with caller-provided
        leaf statistics (used by the RELOPT baseline).
        """
        if mode not in (MODE_DYNOPT, MODE_SIMPLE):
            raise PlanError(f"unknown execution mode: {mode!r}")
        if isinstance(strategy, str):
            strategy = strategy_named(strategy)

        result = BlockExecutionResult(block.name, mode)

        with self.tracer.span("block", block=block.name, mode=mode,
                              strategy=strategy.name) as span:
            if leaf_stats_override is not None:
                for signature, stats in leaf_stats_override.items():
                    self.metastore.put(signature, stats)
            elif run_pilots:
                report = self.pilot_runner.run(
                    block, mode=pilot_mode,
                    reuse_statistics=reuse_statistics
                )
                result.pilot = report
                result.pilot_seconds = report.simulated_seconds
                block = self._apply_reusable_outputs(block, report)

            if mode == MODE_SIMPLE:
                self._execute_simple(block, strategy, result)
            else:
                self._execute_dynamic(block, strategy, result,
                                      collect_column_stats)
            span.set(
                iterations=len(result.iterations),
                sim_total_s=round(result.total_seconds, 6),
                replans=len(result.replanned_failures),
                recovered_jobs=len(result.recovered_jobs),
            )
        return result

    # -- DYNOPT loop ------------------------------------------------------------------

    def _execute_dynamic(self, block: JoinBlock,
                         strategy: ExecutionStrategy,
                         result: BlockExecutionResult,
                         collect_column_stats: bool = True) -> None:
        """The optimize-execute loop of Algorithm 2.

        With ``reoptimize_every_job`` (the paper's default policy) every
        completed step re-invokes the optimizer. Otherwise re-optimization
        is *conditional* (Section 5.1): the current job graph keeps
        executing as long as each job's observed output cardinality stays
        within ``reoptimization_threshold`` of its estimate.

        This loop is also where failures recover (Section 1: materialized
        checkpoints make re-optimization fault-tolerant). A *permanent*
        job failure (task retries exhausted, broadcast build overflow)
        discards the current graph and re-optimizes -- with the failed
        broadcast's alias set banned, so the replan falls back to a
        repartition join. A *lost* intermediate relation (node loss) is
        rebuilt by re-running just its producing sub-plan, found through
        the provenance map.
        """
        recovery = _RecoveryState()
        iteration = 0
        # Snapshot the block's identities before any substitution: audit
        # ingestion and correction lookups key off the original shape.
        feedback_context = (block_feedback_context(block)
                            if self.feedback is not None else None)
        while True:
            finished = self._finished_output(block)
            if finished is not None:
                self._ensure_relations([finished], recovery, result)
                result.output_file = finished
                return

            optimization = self._optimize(block, recovery.banned_broadcast,
                                          iteration=iteration,
                                          feedback_context=feedback_context)
            result.optimizer_seconds += optimization.simulated_seconds
            result.plans.append(optimization.plan)

            compiler = self._compiler(f"{block.name}.it{iteration}")
            graph = compiler.compile_block(optimization.plan)
            if self.tracer.enabled:
                self.tracer.event("compile", block=block.name,
                                  iteration=iteration,
                                  jobs=graph.job_count,
                                  trivial=graph.trivial)
            if graph.trivial:
                self._ensure_relations([graph.final_output], recovery,
                                       result)
                result.output_file = graph.final_output
                return

            completed: set[str] = set()
            while len(completed) < graph.job_count:
                ready = graph.leaf_jobs(completed)
                chosen = strategy.choose(ready)
                if not chosen:
                    raise PlanError(
                        f"no ready jobs in block {block.name!r} "
                        f"(graph: {graph.describe()})"
                    )
                last_round = (len(completed) + len(chosen)
                              == graph.job_count)
                if not last_round and collect_column_stats:
                    for compiled in chosen:
                        compiled.job.stats_columns = self._stats_columns(
                            block, chosen, compiled
                        )

                self._ensure_relations(
                    self._required_inputs([c.job for c in chosen]),
                    recovery, result,
                )
                try:
                    with self.tracer.span(
                        "execute", block=block.name, iteration=iteration,
                        jobs=[c.name for c in chosen],
                    ) as span:
                        batch = self.runtime.execute_batch(
                            [c.job for c in chosen]
                        )
                        span.set(makespan_s=round(batch.makespan, 6))
                except PERMANENT_JOB_FAILURES as failure:
                    self._replan_around_failure(failure, chosen, recovery,
                                                result)
                    break  # back to the optimizer; the block is unchanged
                result.execution_seconds += batch.makespan
                stats_records = sum(
                    batch[c.name].output_rows for c in chosen
                    if c.job.stats_columns
                )
                result.iterations.append(IterationRecord(
                    index=iteration,
                    plan_signature=plan_signature(optimization.plan),
                    plan_text=render_plan(optimization.plan),
                    estimated_cost=optimization.cost,
                    jobs_executed=[c.name for c in chosen],
                    makespan_seconds=batch.makespan,
                    optimizer_seconds=(optimization.simulated_seconds
                                       if not completed else 0.0),
                    collected_statistics=not last_round,
                    stats_records=stats_records,
                ))
                iteration += 1

                if self.feedback is not None:
                    # Keys must come from the pre-substitution block (the
                    # shape the estimates were computed over), so audits
                    # are ingested before the substitution loop below.
                    for compiled in chosen:
                        self._ingest_feedback(feedback_context, block,
                                              compiled,
                                              batch[compiled.name])

                surprised = False
                qerror_threshold = self.config.midjob_qerror_threshold
                triggered: list[tuple[str, float]] = []
                for compiled in chosen:
                    job_result = batch[compiled.name]
                    recovery.provenance[compiled.job.output_name] = \
                        compiled.job
                    block = self._substitute(block, compiled, job_result)
                    completed.add(compiled.name)
                    missed = self._estimate_missed(compiled, job_result)
                    self._audit_estimate(compiled, job_result,
                                         iteration - 1, missed)
                    if missed:
                        surprised = True
                    if qerror_threshold != float("inf"):
                        worst = max(
                            q_error(compiled.estimated_rows,
                                    job_result.output_rows),
                            q_error(compiled.estimated_bytes,
                                    job_result.output_bytes),
                        )
                        if worst >= qerror_threshold:
                            triggered.append((compiled.name, worst))
                # A node loss may eat any freshly materialized output;
                # recovery happens lazily, when something needs it again.
                self._inject_node_losses([c.job for c in chosen], result)
                if len(completed) == graph.job_count:
                    break
                if triggered:
                    # Mid-job replan: the audit's q-error crossed the
                    # configured threshold with jobs still pending --
                    # abandon the rest of this graph and re-optimize with
                    # the fresh statistics (the block substitutions above
                    # checkpoint everything already executed).
                    for job_name, worst in triggered:
                        result.midjob_replans.append(job_name)
                        if self.tracer.enabled:
                            self.tracer.event(
                                "midjob_replan",
                                job=job_name,
                                q_error=round(worst, 6),
                                threshold=qerror_threshold,
                            )
                        if self.metrics.enabled:
                            self.metrics.inc("dynopt.midjob_replans")
                    break  # back to the optimizer with fresh statistics
                if self.config.reoptimize_every_job or surprised:
                    break  # back to the optimizer with fresh statistics

    # -- fault recovery ---------------------------------------------------------------

    def _replan_around_failure(self, failure: Exception,
                               chosen: list[CompiledJob],
                               recovery: _RecoveryState,
                               result: BlockExecutionResult) -> None:
        """A job of the current graph failed permanently: replan.

        The executed part of the block is already substituted (its
        checkpoints are safe in the DFS); only the *remaining* block is
        re-optimized. A failed broadcast join additionally bans its alias
        set, so the optimizer's next plan repartitions that join instead
        -- the paper's "re-optimization routes around the failure".
        """
        recovery.replans += 1
        if recovery.replans > self.config.max_recovery_replans:
            raise failure
        job_name = getattr(failure, "job_name", "")
        failed = next((c for c in chosen if c.name == job_name), None)
        banned_now = False
        if failed is not None and failed.job.is_broadcast_join:
            recovery.banned_broadcast = recovery.banned_broadcast | \
                {frozenset(failed.output_aliases)}
            banned_now = True
        result.replanned_failures.append(
            f"{job_name or '<batch>'}: {type(failure).__name__}")
        if self.tracer.enabled:
            self.tracer.event(
                "replan",
                job=job_name or "<batch>",
                error=type(failure).__name__,
                replans=recovery.replans,
                banned_broadcast=(sorted(failed.output_aliases)
                                  if banned_now else []),
            )
        self.metrics.inc("dynopt.replans")
        # The dead batch may have published partial statistics; replanned
        # jobs can reuse the same names and must publish from scratch.
        for compiled in chosen:
            self.runtime.coordination.clear_scope(
                stats_scope(compiled.job.name))

    def _inject_node_losses(self, jobs: list[MapReduceJob],
                            result: BlockExecutionResult) -> None:
        """Let the armed fault plan delete freshly materialized outputs."""
        injector = self.runtime.fault_injector
        if injector is None:
            return
        lost = injector.lose_outputs([job.output_name for job in jobs])
        for name in lost:
            self.runtime.dfs.delete_if_exists(name)
            result.lost_outputs.append(name)

    def _required_inputs(self, jobs: list[MapReduceJob]) -> list[str]:
        names: list[str] = []
        for job in jobs:
            names.extend(job.inputs)
            names.extend(build.input_file for build in job.broadcast_builds)
        return names

    def _ensure_relations(self, names: list[str],
                          recovery: _RecoveryState,
                          result: BlockExecutionResult) -> None:
        """Re-materialize any of ``names`` a node loss deleted."""
        for name in names:
            if not self.runtime.dfs.exists(name):
                self._recover_relation(name, recovery, result)

    def _recover_relation(self, name: str, recovery: _RecoveryState,
                          result: BlockExecutionResult) -> None:
        """Re-run the sub-plan that produced the lost relation ``name``.

        Recurses through lost upstream inputs first, so exactly the lost
        part of the lineage re-executes -- never the whole query (the
        checkpointing argument of Section 1). Outputs are considered for
        node loss at most once per run, so recovery always terminates.
        """
        producer = recovery.provenance.get(name)
        if producer is None:
            raise StorageError(
                f"lost relation {name!r} has no recorded producer; "
                f"cannot recover")
        self._ensure_relations(self._required_inputs([producer]),
                               recovery, result)
        with self.tracer.span("recover", relation=name,
                              job=producer.name) as span:
            batch = self.runtime.execute_batch([producer])
            span.set(makespan_s=round(batch.makespan, 6))
        result.execution_seconds += batch.makespan
        result.recovered_jobs.append(producer.name)
        self.metrics.inc("dynopt.recovered_jobs")

    def _estimate_missed(self, compiled: CompiledJob,
                         job_result: JobResult) -> bool:
        """Did the observed cardinality deviate beyond the threshold?"""
        estimated = max(compiled.estimated_rows, 1.0)
        observed = float(job_result.output_rows)
        deviation = abs(observed - estimated) / estimated
        return deviation > self.config.reoptimization_threshold

    def _audit_estimate(self, compiled: CompiledJob, job_result: JobResult,
                        iteration: int, missed: bool) -> None:
        """Record estimated-vs-actual for one executed sub-plan.

        The q-error per executed job is the paper's core feedback signal
        (observed statistics replacing estimates); surfacing it is what
        makes a DYNOPT replan explainable from a trace.
        """
        tracer = self.tracer
        metrics = self.metrics
        if not (tracer.enabled or metrics.enabled):
            return
        rows_q = q_error(compiled.estimated_rows, job_result.output_rows)
        bytes_q = q_error(compiled.estimated_bytes, job_result.output_bytes)
        if tracer.enabled:
            tracer.event(
                "estimate",
                job=compiled.name,
                iteration=iteration,
                joins=compiled.join_count,
                estimated_rows=round(compiled.estimated_rows, 3),
                actual_rows=job_result.output_rows,
                estimated_bytes=round(compiled.estimated_bytes, 3),
                actual_bytes=job_result.output_bytes,
                q_error_rows=round(rows_q, 6),
                q_error_bytes=round(bytes_q, 6),
                missed=missed,
            )
        if metrics.enabled:
            metrics.observe("qerror.rows", rows_q)
            metrics.observe("qerror.bytes", bytes_q)
            metrics.inc("dynopt.subplans_executed")
            if missed:
                metrics.inc("dynopt.estimate_misses")

    def _ingest_feedback(self, context: BlockFeedbackContext,
                         block: JoinBlock, compiled: CompiledJob,
                         job_result: JobResult) -> None:
        """Feed one executed job's estimate audit into the feedback store.

        Only join results are learnable: leaf-only and stage jobs carry
        no cardinality-model estimate (their rows/bytes come straight
        from statistics or are unestimated), so correcting them would
        poison unrelated keys.
        """
        if compiled.join_count < 1 or not compiled.output_aliases:
            return
        if compiled.estimated_rows <= 0.0:
            return
        key = group_key(context, block, compiled.output_aliases)
        if key is None:
            return
        identity = tuple(sorted(
            (alias, context.alias_identity[alias])
            for alias in compiled.output_aliases
        ))
        escalated = self.feedback.ingest(
            key, identity,
            estimated_rows=compiled.estimated_rows,
            actual_rows=float(job_result.output_rows),
            estimated_bytes=compiled.estimated_bytes,
            actual_bytes=float(job_result.output_bytes),
        )
        if escalated and self.tracer.enabled:
            self.tracer.event(
                "feedback_escalate",
                job=compiled.name,
                signatures=sorted(escalated),
            )

    # -- DYNOPT-SIMPLE ------------------------------------------------------------------

    def execute_physical_plan(
        self,
        block: JoinBlock,
        plan: PhysicalNode,
        strategy: ExecutionStrategy | str = "SIMPLE_MO",
        estimated_cost: float | None = None,
        label: str = "plan",
    ) -> BlockExecutionResult:
        """Execute a caller-provided physical plan without optimization.

        Used by the baselines (BESTSTATICJAQL hand-written plans, RELOPT
        plans "hand-coded to a Jaql script", Section 6.1).
        """
        if isinstance(strategy, str):
            strategy = strategy_named(strategy)
        result = BlockExecutionResult(block.name, MODE_SIMPLE)
        result.plans.append(plan)
        self._run_graph(
            block, plan,
            estimated_cost if estimated_cost is not None else plan.cost,
            0.0, strategy, result, label,
        )
        return result

    def _execute_simple(self, block: JoinBlock,
                        strategy: ExecutionStrategy,
                        result: BlockExecutionResult) -> None:
        finished = self._finished_output(block)
        if finished is not None:
            result.output_file = finished
            return

        feedback_context = (block_feedback_context(block)
                            if self.feedback is not None else None)
        optimization = self._optimize(block,
                                      feedback_context=feedback_context)
        result.optimizer_seconds += optimization.simulated_seconds
        result.plans.append(optimization.plan)
        self._run_graph(
            block, optimization.plan, optimization.cost,
            optimization.simulated_seconds, strategy, result, "s0",
        )

    def _run_graph(self, block: JoinBlock, plan: PhysicalNode,
                   estimated_cost: float, optimizer_seconds: float,
                   strategy: ExecutionStrategy,
                   result: BlockExecutionResult, label: str) -> None:
        compiler = self._compiler(f"{block.name}.{label}")
        graph = compiler.compile_block(plan)
        if self.tracer.enabled:
            self.tracer.event("compile", block=block.name, label=label,
                              jobs=graph.job_count, trivial=graph.trivial)
        if graph.trivial:
            result.output_file = graph.final_output
            return

        if strategy.parallelism is None:
            # MO: one batch, the scheduler overlaps independent jobs.
            dependencies = {
                compiled.name: list(compiled.depends_on)
                for compiled in graph.jobs
            }
            with self.tracer.span(
                "execute", block=block.name, label=label,
                jobs=[compiled.name for compiled in graph.jobs],
            ) as span:
                batch = self.runtime.execute_batch(
                    [compiled.job for compiled in graph.jobs], dependencies
                )
                span.set(makespan_s=round(batch.makespan, 6))
            result.execution_seconds += batch.makespan
            result.iterations.append(IterationRecord(
                index=0,
                plan_signature=plan_signature(plan),
                plan_text=render_plan(plan),
                estimated_cost=estimated_cost,
                jobs_executed=[compiled.name for compiled in graph.jobs],
                makespan_seconds=batch.makespan,
                optimizer_seconds=optimizer_seconds,
                collected_statistics=False,
            ))
        else:
            completed: set[str] = set()
            index = 0
            while len(completed) < graph.job_count:
                ready = graph.leaf_jobs(completed)
                chosen = strategy.choose(ready)
                if not chosen:
                    raise PlanError(
                        f"stuck executing block {block.name!r}: no ready jobs"
                    )
                with self.tracer.span(
                    "execute", block=block.name, label=label,
                    jobs=[compiled.name for compiled in chosen],
                ) as span:
                    batch = self.runtime.execute_batch(
                        [compiled.job for compiled in chosen]
                    )
                    span.set(makespan_s=round(batch.makespan, 6))
                result.execution_seconds += batch.makespan
                result.iterations.append(IterationRecord(
                    index=index,
                    plan_signature=plan_signature(plan),
                    plan_text=render_plan(plan),
                    estimated_cost=estimated_cost,
                    jobs_executed=[compiled.name for compiled in chosen],
                    makespan_seconds=batch.makespan,
                    optimizer_seconds=(
                        optimizer_seconds if index == 0 else 0.0
                    ),
                    collected_statistics=False,
                ))
                completed.update(compiled.name for compiled in chosen)
                index += 1
        result.output_file = graph.final_output

    # -- helpers --------------------------------------------------------------------------

    def _optimize(self, block: JoinBlock,
                  banned_broadcast: frozenset = frozenset(),
                  iteration: int = 0,
                  feedback_context: BlockFeedbackContext | None = None):
        leaf_stats = self._leaf_stats(block)
        feedback = self.feedback
        # Learned corrections change this block's estimates without
        # changing the statistics; salting the fingerprint keeps plans
        # cached under other correction states from resurfacing.
        salt = ""
        if feedback is not None and feedback_context is not None:
            salt = feedback.correction_token(
                feedback_context.alias_identity)
        # Recovery replans carry banned broadcasts that are not part of the
        # cache key; bypass the cache entirely on that (rare) path.
        cache = self.plan_cache if not banned_broadcast else None
        if cache is not None:
            cached = cache.lookup(block, leaf_stats, salt=salt)
            if self.tracer.enabled:
                self.tracer.event("plan_cache", block=block.name,
                                  iteration=iteration,
                                  hit=cached is not None)
            if cached is not None:
                if self.metrics.enabled:
                    self.metrics.inc("plan_cache.hits")
                if feedback is not None:
                    feedback.record_choice(canonical_block_key(block),
                                           plan_signature(cached.plan),
                                           cached.cost)
                return cached
            if self.metrics.enabled:
                self.metrics.inc("plan_cache.misses")
        optimizer = JoinOptimizer(block, leaf_stats, self.config.optimizer,
                                  banned_broadcast=banned_broadcast,
                                  feedback=feedback,
                                  feedback_context=feedback_context)
        with self.tracer.span("optimize", block=block.name,
                              iteration=iteration,
                              leaves=len(block.leaves),
                              banned_broadcasts=len(banned_broadcast),
                              ) as span:
            optimization = optimizer.optimize()
            span.set(
                cost=round(optimization.cost, 3),
                plans_considered=optimization.plans_considered,
                sim_s=round(optimization.simulated_seconds, 6),
                plan=plan_signature(optimization.plan),
            )
        if self.metrics.enabled:
            self.metrics.inc("dynopt.optimizations")
            self.metrics.observe("optimizer.sim_s",
                                 optimization.simulated_seconds)
        if cache is not None:
            cache.store(block, leaf_stats, optimization.plan,
                        optimization.cost, salt=salt)
        if feedback is not None:
            feedback.record_choice(canonical_block_key(block),
                                   plan_signature(optimization.plan),
                                   optimization.cost)
        return optimization

    def _compiler(self, prefix: str) -> PlanCompiler:
        return PlanCompiler(self.runtime.dfs, self.config, prefix)

    def _leaf_stats(self, block: JoinBlock) -> dict[str, TableStats]:
        stats: dict[str, TableStats] = {}
        for leaf in block.leaves:
            signature = leaf.signature()
            entry = self.metastore.get(signature)
            if entry is None:
                raise PlanError(
                    f"no statistics for leaf {leaf.describe()}; run pilots "
                    f"or provide leaf_stats_override"
                )
            stats[signature] = entry
        return stats

    def _finished_output(self, block: JoinBlock) -> str | None:
        if len(block.leaves) == 1 and not block.leaves[0].is_base:
            if block.non_local_predicates or block.conditions:
                raise PlanError(
                    f"block {block.name!r} fully merged but work remains"
                )
            return block.leaves[0].source_name
        return None

    def _apply_reusable_outputs(self, block: JoinBlock,
                                report: PilotReport) -> JoinBlock:
        """Selective-predicate optimization (Section 4.1): pilot outputs
        covering the whole relation replace their leaf."""
        for leaf in block.base_leaves():
            outcome = report.outcomes.get(leaf.signature())
            if outcome is None or outcome.reusable_output is None:
                continue
            if outcome.alias not in leaf.aliases:
                # Self-joins share one pilot run per signature, but its
                # output rows are qualified under the alias that ran it.
                continue
            if len(block.leaves) == 1:
                continue  # keep the final job; nothing to substitute into
            self.metastore.put(
                f"intermediate:{outcome.reusable_output}", outcome.stats
            )
            block = block.substitute(
                leaf.aliases, outcome.reusable_output, (),
                provenance=leaf.signature(),
            )
        return block

    def _stats_columns(self, block: JoinBlock, chosen: list[CompiledJob],
                       job: CompiledJob) -> list[str]:
        """Columns of this job's output needed to re-optimize the remainder
        (Section 5.4: only attributes in still-unexecuted join conditions)."""
        executed_sets = [compiled.output_aliases for compiled in chosen]
        applied: set = set()
        for compiled in chosen:
            applied.update(compiled.applied_predicates)
        columns: set[str] = set()
        for condition in block.conditions:
            if any(condition.aliases() <= aliases for aliases in executed_sets):
                continue  # evaluated inside an executed job
            for ref in (condition.left, condition.right):
                if ref.alias in job.output_aliases:
                    columns.add(ref.qualified)
        for predicate in block.non_local_predicates:
            if predicate in applied:
                continue
            if predicate.references() & job.output_aliases:
                columns.update(
                    predicate_columns(predicate, job.output_aliases)
                )
        columns.update(composite_join_columns(block, job.output_aliases))
        return sorted(columns)

    def _substitute(self, block: JoinBlock, compiled: CompiledJob,
                    job_result: JobResult) -> JoinBlock:
        output = job_result.output_name
        stats = job_result.collected_stats
        if stats is None:
            stats = TableStats(
                float(job_result.output_rows),
                float(job_result.output_bytes),
                exact=True,
            )
        else:
            stats = TableStats(
                float(job_result.output_rows),
                float(job_result.output_bytes),
                dict(stats.columns),
                exact=True,
            )
        self.metastore.put(f"intermediate:{output}", stats)
        if self.tracer.enabled:
            self.tracer.event(
                "substitute",
                job=compiled.name,
                output=output,
                aliases=sorted(compiled.output_aliases),
                rows=job_result.output_rows,
                collected_columns=sorted(stats.columns),
            )
        return block.substitute(
            compiled.output_aliases, output, compiled.applied_predicates
        )
