"""Baseline plan generators of the evaluation (paper Section 6.1).

* **BESTSTATICJAQL** -- "the existing version of Jaql produces only
  left-deep plans and the join ordering is determined by the order of
  relations in the FROM clause. For each query, we tried all possible
  orders of relations and picked the best one." We enumerate every
  cartesian-free left-deep order, rank them with an oracle cost model (true
  leaf statistics), execute the top candidates on the simulator, and keep
  the fastest. Join methods follow Jaql's own heuristic: broadcast only
  when the build relation's *file size* fits in memory (filters are not
  taken into account, Section 2.2.2).
* **BESTSTATICHIVE** -- the same, executed under the Hive backend.
* **RELOPT** -- the shared-nothing relational optimizer DBMS-X: our join
  enumerator fed *full-table* statistics with exact per-predicate
  selectivities combined under the independence assumption, and UDF
  selectivity defaulted to 1.0 (opaque). This reproduces DBMS-X's two
  documented failure modes: correlation blindness (Q8') and UDF opacity
  (Q9', Figure 3).
* **Oracle statistics** -- ground-truth leaf statistics (full scan with all
  predicates applied), used for ranking static orders and in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.config import DynoConfig
from repro.data.table import Table
from repro.errors import PlanError
from repro.jaql.blocks import BlockLeaf, JoinBlock
from repro.jaql.expr import qualify_row
from repro.optimizer.cardinality import CardinalityModel
from repro.optimizer.cost import JoinCostModel
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plans import (
    BROADCAST,
    REPARTITION,
    PhysJoin,
    PhysLeaf,
    PhysicalNode,
)
from repro.optimizer.search import JoinOptimizer
from repro.core.pilot import signature_stats_columns
from repro.stats.statistics import RunningStats, TableStats


# ---------------------------------------------------------------------------
# Leaf statistics flavours
# ---------------------------------------------------------------------------


def oracle_leaf_stats(tables: dict[str, Table], block: JoinBlock,
                      kmv_size: int = 1024) -> dict[str, TableStats]:
    """Ground-truth statistics: full scan with all local predicates applied."""
    stats: dict[str, TableStats] = {}
    for leaf in block.base_leaves():
        signature = leaf.signature()
        if signature in stats:
            continue
        columns = signature_stats_columns(block, leaf)
        running = RunningStats(columns, kmv_size)
        table = _table_of(tables, leaf)
        for row in table.rows:
            qualified = leaf.qualify_and_filter(row)
            if qualified is None:
                continue
            running.update(
                row=qualified,
                row_bytes=table.schema.estimated_row_size(row),
            )
        stats[signature] = running.freeze(exact=True)
    return stats


def jaql_file_size_stats(tables: dict[str, Table], block: JoinBlock,
                         kmv_size: int = 1024) -> dict[str, TableStats]:
    """What stock Jaql knows: whole-file sizes, predicates ignored."""
    stats: dict[str, TableStats] = {}
    cache: dict[tuple[str, tuple[str, ...]], TableStats] = {}
    for leaf in block.base_leaves():
        signature = leaf.signature()
        if signature in stats:
            continue
        columns = signature_stats_columns(block, leaf)
        cache_key = (leaf.source_name, tuple(columns))
        cached = cache.get(cache_key)
        if cached is None:
            table = _table_of(tables, leaf)
            running = RunningStats(columns, kmv_size)
            alias = leaf.alias
            for row in table.rows:
                running.update(
                    qualify_row(alias, row),
                    table.schema.estimated_row_size(row),
                )
            cached = running.freeze(exact=True)
            cache[cache_key] = cached
        stats[signature] = cached
    return stats


def relopt_leaf_stats(tables: dict[str, Table], block: JoinBlock,
                      kmv_size: int = 1024) -> dict[str, TableStats]:
    """DBMS-X's view: exact single-predicate selectivities multiplied under
    the independence assumption; UDFs contribute selectivity 1.0."""
    stats: dict[str, TableStats] = {}
    for leaf in block.base_leaves():
        signature = leaf.signature()
        if signature in stats:
            continue
        table = _table_of(tables, leaf)
        columns = signature_stats_columns(block, leaf)
        running = RunningStats(columns, kmv_size)
        alias = leaf.alias
        qualified_rows = [qualify_row(alias, row) for row in table.rows]
        row_bytes = [
            table.schema.estimated_row_size(row) for row in table.rows
        ]
        for qualified, size in zip(qualified_rows, row_bytes):
            running.update(qualified, size)
        full = running.freeze(exact=True)

        selectivity = 1.0
        for predicate in leaf.predicates:
            if predicate.is_udf:
                continue  # opaque: selectivity 1.0
            if not qualified_rows:
                continue
            passing = sum(
                1 for row in qualified_rows if predicate.evaluate(row)
            )
            selectivity *= passing / len(qualified_rows)
        estimated_rows = full.row_count * selectivity
        estimated_bytes = full.size_bytes * selectivity
        stats[signature] = full.scaled_to(estimated_rows, estimated_bytes)
    return stats


def _table_of(tables: dict[str, Table], leaf: BlockLeaf) -> Table:
    try:
        return tables[leaf.source_name]
    except KeyError:
        raise PlanError(
            f"leaf {leaf.describe()} reads unknown table "
            f"{leaf.source_name!r}"
        ) from None


# ---------------------------------------------------------------------------
# Static left-deep plan construction (stock Jaql semantics)
# ---------------------------------------------------------------------------


def enumerate_connected_orders(block: JoinBlock) -> Iterator[tuple[int, ...]]:
    """All cartesian-free left-deep orders, as leaf index tuples."""
    graph = JoinGraph.build(block)
    count = graph.size
    if count == 1:
        yield (0,)
        return

    def extend(order: tuple[int, ...], joined: frozenset[int]) -> Iterator:
        if len(order) == count:
            yield order
            return
        for candidate in range(count):
            if candidate in joined:
                continue
            if not graph.edges_between(joined, frozenset((candidate,))):
                continue
            yield from extend(order + (candidate,),
                              joined | {candidate})

    for first in range(count):
        yield from extend((first,), frozenset((first,)))


def build_left_deep_plan(
    block: JoinBlock,
    order: tuple[int, ...],
    leaf_stats: dict[str, TableStats],
    file_sizes: dict[str, int],
    config: DynoConfig,
) -> PhysicalNode:
    """Left-deep plan in the given order under Jaql's method heuristic.

    The broadcast decision looks only at the build relation's *file size*
    (Section 2.2.2); estimates for interior nodes come from the provided
    leaf statistics so the compiler can size reducers.
    """
    if sorted(order) != list(range(len(block.leaves))):
        raise PlanError(f"order {order} does not cover the block's leaves")
    cardinality = CardinalityModel(block, leaf_stats)
    cost_model = JoinCostModel(config.optimizer)

    def leaf_node(index: int) -> PhysLeaf:
        leaf = block.leaves[index]
        stats = leaf_stats[leaf.signature()]
        return PhysLeaf(
            aliases=leaf.aliases,
            est_rows=stats.row_count,
            est_bytes=stats.size_bytes,
            cost=0.0,
            leaf=leaf,
        )

    current: PhysicalNode = leaf_node(order[0])
    for index in order[1:]:
        right = leaf_node(index)
        right_leaf = block.leaves[index]
        conditions = block.conditions_between(current.aliases,
                                              right.aliases)
        if not conditions:
            raise PlanError(
                f"order {order} requires a cartesian product at leaf "
                f"{right_leaf.describe()}"
            )
        combined = current.aliases | right.aliases
        estimate = cardinality.estimate(combined)
        applied = tuple(
            predicate for predicate in block.non_local_predicates
            if predicate.references() <= combined
            and not predicate.references() <= current.aliases
            and not predicate.references() <= right.aliases
        )
        file_size = file_sizes.get(right_leaf.source_name, 1 << 62)
        method = (
            BROADCAST
            if file_size <= config.optimizer.max_broadcast_bytes
            else REPARTITION
        )
        current = PhysJoin(
            aliases=combined,
            est_rows=estimate.rows,
            est_bytes=estimate.bytes,
            cost=0.0,
            method=method,
            left=current,
            right=right,
            conditions=conditions,
            applied_predicates=applied,
        )
    # Chain marking + cost annotation (Jaql's chain rewrite also checks
    # that the builds fit simultaneously; est_bytes of base leaves are
    # full file sizes here, matching its file-size heuristic).
    return cost_model.apply_chain_rule(current)


@dataclass
class RankedOrder:
    order: tuple[int, ...]
    plan: PhysicalNode
    oracle_cost: float


def rank_orders_by_oracle(
    block: JoinBlock,
    jaql_stats: dict[str, TableStats],
    oracle_stats: dict[str, TableStats],
    file_sizes: dict[str, int],
    config: DynoConfig,
) -> list[RankedOrder]:
    """Rank every connected left-deep order by oracle-estimated cost.

    Plans are *built* with Jaql's knowledge (file sizes decide methods) but
    *ranked* with ground-truth statistics -- a tractable stand-in for the
    paper's exhaustive hand-execution of every FROM order (DESIGN.md §2).
    """
    oracle_cardinality = CardinalityModel(block, oracle_stats)
    cost_model = JoinCostModel(config.optimizer)
    ranked: list[RankedOrder] = []
    for order in enumerate_connected_orders(block):
        plan = build_left_deep_plan(block, order, jaql_stats, file_sizes,
                                    config)
        oracle_plan = _reestimate(plan, oracle_cardinality, block)
        oracle_plan = cost_model.apply_chain_rule(oracle_plan)
        ranked.append(RankedOrder(order, plan, oracle_plan.cost))
    ranked.sort(key=lambda entry: (entry.oracle_cost, entry.order))
    return ranked


def _reestimate(node: PhysicalNode, cardinality: CardinalityModel,
                block: JoinBlock) -> PhysicalNode:
    """Rebuild a plan with estimates from another cardinality model."""
    from dataclasses import replace

    if isinstance(node, PhysLeaf):
        stats = cardinality.leaf_stats(node.leaf)
        return replace(node, est_rows=stats.row_count,
                       est_bytes=stats.size_bytes)
    assert isinstance(node, PhysJoin)
    left = _reestimate(node.left, cardinality, block)
    right = _reestimate(node.right, cardinality, block)
    estimate = cardinality.estimate(node.aliases)
    return replace(node, left=left, right=right,
                   est_rows=estimate.rows, est_bytes=estimate.bytes)


# ---------------------------------------------------------------------------
# RELOPT plan
# ---------------------------------------------------------------------------


#: Conservative broadcast margin for the RELOPT baseline. "If the
#: optimizer's estimate is incorrect and the build table turns out to not
#: fit in memory, the query may not even terminate. As a result, most
#: systems are quite conservative and favour repartition joins" (Section
#: 6.4) -- DBMS-X cannot trust its correlation-blind, UDF-opaque estimates.
RELOPT_SAFETY_FACTOR = 3.0


def relopt_optimizer_config(config: DynoConfig):
    """The optimizer configuration DBMS-X effectively runs with."""
    from dataclasses import replace

    # spill_margin_factor=1.0 disables the spillable hybrid hash join:
    # DBMS-X is the paper's conventional conservative optimizer and only
    # chooses between broadcast and repartition (Section 6.4).
    return replace(config.optimizer,
                   broadcast_safety_factor=RELOPT_SAFETY_FACTOR,
                   spill_margin_factor=1.0)


def relopt_plan(block: JoinBlock, tables: dict[str, Table],
                config: DynoConfig,
                kmv_size: int = 1024) -> tuple[PhysicalNode,
                                               dict[str, TableStats]]:
    """The plan DBMS-X would pick, plus the statistics it believed."""
    stats = relopt_leaf_stats(tables, block, kmv_size)
    optimizer = JoinOptimizer(block, stats, relopt_optimizer_config(config))
    return optimizer.optimize().plan, stats
