"""Implementation rules: logical join -> physical operator.

The paper deactivated Columbia's stock physical joins (hash/merge) and
added two new ones matching Jaql's runtime: the repartition join and the
broadcast join (Section 5.2). We mirror that: each rule turns a logical
join (two optimized child plans) into a physical candidate, or declines.

The broadcast rule is gated on the *estimated* build size fitting the
memory budget ``Mmax`` -- when the estimate is wrong (e.g. RELOPT
underestimating a correlated predicate), the chosen plan can fail at
runtime with :class:`~repro.errors.BroadcastBuildOverflowError`, which is
the disaster scenario pilot runs exist to avoid (Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jaql.expr import JoinCondition, Predicate
from repro.optimizer.cost import JoinCostModel
from repro.optimizer.plans import (
    BROADCAST,
    HYBRID,
    REPARTITION,
    SKEW,
    PhysJoin,
    PhysicalNode,
    pipeline_build_bytes,
)


@dataclass(frozen=True)
class JoinContext:
    """Everything a rule needs about the join being implemented."""

    aliases: frozenset[str]
    est_rows: float
    est_bytes: float
    conditions: tuple[JoinCondition, ...]
    applied_predicates: tuple[Predicate, ...]
    #: heavy-hitter join keys per side, ``((key tuple, fraction), ...)``
    #: in join-condition order -- left is the probe, right the build.
    probe_heavy: tuple = ()
    build_heavy: tuple = ()
    #: distinct values of the build side's join key (for estimating the
    #: build share of heavy keys not in the build's own heavy list).
    build_key_distinct: float = 1.0


class ImplementationRule:
    """Base class: produce a physical join candidate or None."""

    name = "abstract"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        raise NotImplementedError


class RepartitionJoinRule(ImplementationRule):
    """Always applicable: shuffle both inputs in one map+reduce job."""

    name = "join->repartition"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        cost = (left.cost + right.cost
                + cost_model.repartition_cost(
                    left.est_bytes, right.est_bytes, context.est_bytes))
        return PhysJoin(
            aliases=context.aliases,
            est_rows=context.est_rows,
            est_bytes=context.est_bytes,
            cost=cost,
            method=REPARTITION,
            left=left,
            right=right,
            conditions=context.conditions,
            applied_predicates=context.applied_predicates,
        )


class BroadcastJoinRule(ImplementationRule):
    """Applicable when the (estimated) build side fits in task memory.

    Incorporates the paper's chain rule *during* search (Section 5.2: "we
    added a new rule to our optimizer ... which joins should be chained"):
    when the probe input's best plan is itself a broadcast join and the
    combined pipeline builds fit in ``Mmax``, the join is marked chained
    and skips both the probe's materialization (``cout``) and its re-scan
    (``cprobe``) -- so single-job chains can win against cascades of
    map-only jobs.
    """

    name = "join->broadcast"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        if not cost_model.fits_in_memory(right.est_bytes):
            return None
        config = cost_model.config
        chained = (
            config.enable_chain_rule
            and isinstance(left, PhysJoin)
            and left.method == BROADCAST
            and (pipeline_build_bytes(left) + right.est_bytes
                 <= config.max_broadcast_bytes)
        )
        cost = (left.cost + right.cost
                + config.cbuild * right.est_bytes
                + config.cout * context.est_bytes)
        if chained:
            cost -= config.cout * left.est_bytes
        else:
            cost += config.cprobe * left.est_bytes + config.cjob
        return PhysJoin(
            aliases=context.aliases,
            est_rows=context.est_rows,
            est_bytes=context.est_bytes,
            cost=cost,
            method=BROADCAST,
            left=left,
            right=right,
            conditions=context.conditions,
            applied_predicates=context.applied_predicates,
            chained=chained,
        )


class HybridHashJoinRule(ImplementationRule):
    """Spillable hash join for builds that *almost* fit in task memory.

    Applicable exactly where the broadcast rule declines for memory: the
    estimated build side (with the safety factor) exceeds ``Mmax`` but
    stays within ``spill_margin_factor`` of it. Tasks keep the in-memory
    share of the build and partition the rest to disk, so the join stays
    map-only at the price of ``cspill`` per spilled byte -- cheaper than
    a repartition join for marginal overflows, never cheaper for
    pathological ones. Hybrid joins never chain (the build already claims
    the whole budget), so the probe side is always materialized or a
    fresh pipeline.
    """

    name = "join->hybrid"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        if cost_model.fits_in_memory(right.est_bytes):
            return None  # the plain broadcast join dominates
        if not cost_model.fits_with_spill(right.est_bytes):
            return None
        cost = (left.cost + right.cost
                + cost_model.hybrid_cost(
                    left.est_bytes, right.est_bytes, context.est_bytes))
        return PhysJoin(
            aliases=context.aliases,
            est_rows=context.est_rows,
            est_bytes=context.est_bytes,
            cost=cost,
            method=HYBRID,
            left=left,
            right=right,
            conditions=context.conditions,
            applied_predicates=context.applied_predicates,
        )


class SkewJoinRule(ImplementationRule):
    """Skew-aware join for probe sides dominated by a few hot keys.

    Heavy-hitter keys (detected from the pilot frequency profile, see
    :meth:`repro.optimizer.cardinality.CardinalityModel.heavy_hitters`)
    are routed through a broadcast side channel: map tasks hash-load only
    the build rows of those keys and join heavy probe rows in place,
    bypassing the shuffle, while the long tail of both sides repartitions
    normally -- one map+reduce job. Applicable when per-key and total
    heavy fractions clear the configured thresholds and the heavy-key
    slice of the build fits in task memory. Where a plain broadcast join
    applies it always costs less (it skips the tail shuffle too), so this
    rule only ever wins for builds too big to broadcast or spill --
    exactly the hot-key repartition joins it exists to fix.
    """

    name = "join->skew"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        config = cost_model.config
        if not config.enable_skew_rule or not context.probe_heavy:
            return None
        heavy = [(key, fraction) for key, fraction in context.probe_heavy
                 if fraction >= config.skew_key_fraction]
        heavy = heavy[:config.skew_max_keys]
        if not heavy:
            return None
        probe_fraction = min(1.0, sum(fraction for _, fraction in heavy))
        if probe_fraction < config.skew_min_probe_fraction:
            return None
        build_fractions = dict(context.build_heavy)
        distinct = max(context.build_key_distinct, 1.0)
        build_fraction = min(1.0, sum(
            build_fractions.get(key, 1.0 / distinct) for key, _ in heavy
        ))
        if not cost_model.fits_in_memory(build_fraction * right.est_bytes):
            return None
        cost = (left.cost + right.cost
                + cost_model.skew_cost(
                    left.est_bytes, right.est_bytes, context.est_bytes,
                    probe_fraction, build_fraction))
        return PhysJoin(
            aliases=context.aliases,
            est_rows=context.est_rows,
            est_bytes=context.est_bytes,
            cost=cost,
            method=SKEW,
            left=left,
            right=right,
            conditions=context.conditions,
            applied_predicates=context.applied_predicates,
            heavy_keys=tuple(key for key, _ in heavy),
            heavy_probe_fraction=probe_fraction,
            heavy_build_fraction=build_fraction,
        )


def default_rules() -> tuple[ImplementationRule, ...]:
    """The rule set: the paper's two joins plus the spill and skew variants.

    The broadcast rule comes first so that exact cost ties (e.g. joins
    over empty estimated inputs) resolve to the map-only operator, which
    is never slower in practice; the hybrid rule is mutually exclusive
    with it (it applies only when broadcast declines for memory); the
    skew rule produces an extra candidate only when the probe side's
    frequency profile clears its thresholds.
    """
    return (BroadcastJoinRule(), HybridHashJoinRule(), SkewJoinRule(),
            RepartitionJoinRule())
