"""Implementation rules: logical join -> physical operator.

The paper deactivated Columbia's stock physical joins (hash/merge) and
added two new ones matching Jaql's runtime: the repartition join and the
broadcast join (Section 5.2). We mirror that: each rule turns a logical
join (two optimized child plans) into a physical candidate, or declines.

The broadcast rule is gated on the *estimated* build size fitting the
memory budget ``Mmax`` -- when the estimate is wrong (e.g. RELOPT
underestimating a correlated predicate), the chosen plan can fail at
runtime with :class:`~repro.errors.BroadcastBuildOverflowError`, which is
the disaster scenario pilot runs exist to avoid (Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jaql.expr import JoinCondition, Predicate
from repro.optimizer.cost import JoinCostModel
from repro.optimizer.plans import (
    BROADCAST,
    HYBRID,
    REPARTITION,
    PhysJoin,
    PhysicalNode,
    pipeline_build_bytes,
)


@dataclass(frozen=True)
class JoinContext:
    """Everything a rule needs about the join being implemented."""

    aliases: frozenset[str]
    est_rows: float
    est_bytes: float
    conditions: tuple[JoinCondition, ...]
    applied_predicates: tuple[Predicate, ...]


class ImplementationRule:
    """Base class: produce a physical join candidate or None."""

    name = "abstract"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        raise NotImplementedError


class RepartitionJoinRule(ImplementationRule):
    """Always applicable: shuffle both inputs in one map+reduce job."""

    name = "join->repartition"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        cost = (left.cost + right.cost
                + cost_model.repartition_cost(
                    left.est_bytes, right.est_bytes, context.est_bytes))
        return PhysJoin(
            aliases=context.aliases,
            est_rows=context.est_rows,
            est_bytes=context.est_bytes,
            cost=cost,
            method=REPARTITION,
            left=left,
            right=right,
            conditions=context.conditions,
            applied_predicates=context.applied_predicates,
        )


class BroadcastJoinRule(ImplementationRule):
    """Applicable when the (estimated) build side fits in task memory.

    Incorporates the paper's chain rule *during* search (Section 5.2: "we
    added a new rule to our optimizer ... which joins should be chained"):
    when the probe input's best plan is itself a broadcast join and the
    combined pipeline builds fit in ``Mmax``, the join is marked chained
    and skips both the probe's materialization (``cout``) and its re-scan
    (``cprobe``) -- so single-job chains can win against cascades of
    map-only jobs.
    """

    name = "join->broadcast"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        if not cost_model.fits_in_memory(right.est_bytes):
            return None
        config = cost_model.config
        chained = (
            config.enable_chain_rule
            and isinstance(left, PhysJoin)
            and left.method == BROADCAST
            and (pipeline_build_bytes(left) + right.est_bytes
                 <= config.max_broadcast_bytes)
        )
        cost = (left.cost + right.cost
                + config.cbuild * right.est_bytes
                + config.cout * context.est_bytes)
        if chained:
            cost -= config.cout * left.est_bytes
        else:
            cost += config.cprobe * left.est_bytes + config.cjob
        return PhysJoin(
            aliases=context.aliases,
            est_rows=context.est_rows,
            est_bytes=context.est_bytes,
            cost=cost,
            method=BROADCAST,
            left=left,
            right=right,
            conditions=context.conditions,
            applied_predicates=context.applied_predicates,
            chained=chained,
        )


class HybridHashJoinRule(ImplementationRule):
    """Spillable hash join for builds that *almost* fit in task memory.

    Applicable exactly where the broadcast rule declines for memory: the
    estimated build side (with the safety factor) exceeds ``Mmax`` but
    stays within ``spill_margin_factor`` of it. Tasks keep the in-memory
    share of the build and partition the rest to disk, so the join stays
    map-only at the price of ``cspill`` per spilled byte -- cheaper than
    a repartition join for marginal overflows, never cheaper for
    pathological ones. Hybrid joins never chain (the build already claims
    the whole budget), so the probe side is always materialized or a
    fresh pipeline.
    """

    name = "join->hybrid"

    def apply(self, left: PhysicalNode, right: PhysicalNode,
              context: JoinContext,
              cost_model: JoinCostModel) -> PhysJoin | None:
        if cost_model.fits_in_memory(right.est_bytes):
            return None  # the plain broadcast join dominates
        if not cost_model.fits_with_spill(right.est_bytes):
            return None
        cost = (left.cost + right.cost
                + cost_model.hybrid_cost(
                    left.est_bytes, right.est_bytes, context.est_bytes))
        return PhysJoin(
            aliases=context.aliases,
            est_rows=context.est_rows,
            est_bytes=context.est_bytes,
            cost=cost,
            method=HYBRID,
            left=left,
            right=right,
            conditions=context.conditions,
            applied_predicates=context.applied_predicates,
        )


def default_rules() -> tuple[ImplementationRule, ...]:
    """The rule set: the paper's two joins plus the spill variant.

    The broadcast rule comes first so that exact cost ties (e.g. joins
    over empty estimated inputs) resolve to the map-only operator, which
    is never slower in practice; the hybrid rule is mutually exclusive
    with it (it applies only when broadcast declines for memory).
    """
    return (BroadcastJoinRule(), HybridHashJoinRule(), RepartitionJoinRule())
