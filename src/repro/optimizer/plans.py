"""Physical plan nodes and the paper-style plan printer.

Physical operators are Jaql's two join methods (Section 2.2.1) plus the
memory-governed spill variant this repro adds:

* ``PhysJoin(method="repartition")`` -- one map+reduce job that shuffles
  both inputs on the join key (the paper's ``./r``);
* ``PhysJoin(method="broadcast")`` -- a map-only hash join whose build side
  is loaded into every task (``./b``); consecutive broadcast joins may be
  *chained* into one job when their build sides fit in memory together;
* ``PhysJoin(method="hybrid")`` -- a map-only *spillable* hash join
  (``./h``): the build side exceeds ``Mmax`` by at most a configured
  margin, so tasks keep what fits in memory and partition the rest to
  disk (Grace-style), paying extra I/O instead of a full shuffle. Hybrid
  joins never chain: their build already claims the whole memory budget.
* ``PhysJoin(method="skew")`` -- the skew-aware hybrid of repartition and
  broadcast (``./s``): heavy-hitter join keys detected from pilot
  frequency profiles are joined map-side against a heavy-keys-only
  broadcast build (bypassing the shuffle entirely), while the long tail
  repartitions as usual -- all within one map+reduce job.

``render_plan`` prints trees in the style of the paper's Figures 2 and 3,
and ``plan_signature`` gives a stable text identity used to detect plan
changes across re-optimization points.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PlanError
from repro.jaql.blocks import BlockLeaf
from repro.jaql.expr import JoinCondition, Predicate

REPARTITION = "repartition"
BROADCAST = "broadcast"
HYBRID = "hybrid"
SKEW = "skew"

#: join methods whose build side is hash-loaded by map tasks (and which a
#: permanent build failure therefore bans together). SKEW belongs here:
#: its heavy-key side channel is a broadcast build, so a doomed/overflowed
#: build bans it alongside broadcast/hybrid and recovery falls back to a
#: pure repartition plan.
HASH_BUILD_METHODS = (BROADCAST, HYBRID, SKEW)

_SYMBOLS = {REPARTITION: "./r", BROADCAST: "./b", HYBRID: "./h",
            SKEW: "./s"}


@dataclass(frozen=True)
class PhysicalNode:
    """Common physical-plan node state."""

    aliases: frozenset[str]
    est_rows: float
    est_bytes: float
    #: cumulative estimated cost of the subtree (chain-rule adjusted).
    cost: float

    def children(self) -> tuple["PhysicalNode", ...]:
        return ()

    @property
    def is_leaf(self) -> bool:
        return not self.children()

    def join_count(self) -> int:
        return sum(child.join_count() for child in self.children())

    def leaves(self) -> tuple["PhysLeaf", ...]:
        collected: list[PhysLeaf] = []
        for child in self.children():
            collected.extend(child.leaves())
        return tuple(collected)


@dataclass(frozen=True)
class PhysLeaf(PhysicalNode):
    """A block leaf: base scan (+ local predicates) or intermediate file."""

    leaf: BlockLeaf = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.leaf is None:
            raise PlanError("PhysLeaf requires its block leaf")
        if self.leaf.aliases != self.aliases:
            raise PlanError("PhysLeaf aliases do not match its block leaf")

    def leaves(self) -> tuple["PhysLeaf", ...]:
        return (self,)

    def label(self) -> str:
        return "+".join(sorted(self.aliases))


@dataclass(frozen=True)
class PhysJoin(PhysicalNode):
    """A join; for broadcast joins ``left`` is the probe, ``right`` the build."""

    method: str = REPARTITION
    left: PhysicalNode = None  # type: ignore[assignment]
    right: PhysicalNode = None  # type: ignore[assignment]
    conditions: tuple[JoinCondition, ...] = ()
    #: non-local predicates evaluated right after this join.
    applied_predicates: tuple[Predicate, ...] = ()
    #: True when this broadcast join runs in the same map-only job as the
    #: broadcast join producing its probe input (Section 5.2, chain rule).
    chained: bool = False
    #: SKEW only: the heavy join-key values (one tuple per key, in join
    #: condition order) routed through the broadcast side channel; frozen
    #: into the plan at optimization time from the pilot frequency profile.
    heavy_keys: tuple = ()
    #: SKEW only: estimated fraction of probe/build *bytes* carried by the
    #: heavy keys (drives costing and the build's declared memory demand).
    heavy_probe_fraction: float = 0.0
    heavy_build_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.method not in (REPARTITION, BROADCAST, HYBRID, SKEW):
            raise PlanError(f"unknown join method: {self.method!r}")
        if self.left is None or self.right is None:
            raise PlanError("join requires two inputs")
        if not self.conditions:
            raise PlanError("physical join requires join conditions")
        if self.chained and self.method != BROADCAST:
            raise PlanError("only broadcast joins can be chained")
        if self.method == SKEW and not self.heavy_keys:
            raise PlanError("skew join requires heavy keys")
        if self.heavy_keys and self.method != SKEW:
            raise PlanError("only skew joins carry heavy keys")
        expected = self.left.aliases | self.right.aliases
        if expected != self.aliases:
            raise PlanError("join aliases do not match its inputs")

    def children(self) -> tuple[PhysicalNode, ...]:
        return (self.left, self.right)

    def join_count(self) -> int:
        return 1 + self.left.join_count() + self.right.join_count()

    @property
    def probe(self) -> PhysicalNode:
        return self.left

    @property
    def build(self) -> PhysicalNode:
        return self.right

    def symbol(self) -> str:
        return _SYMBOLS[self.method]


def replace_cost(node: PhysicalNode, cost: float) -> PhysicalNode:
    return replace(node, cost=cost)


def pipeline_build_bytes(node: PhysicalNode) -> float:
    """Estimated bytes of all build sides in the node's map pipeline.

    A broadcast join's pipeline holds its own build plus -- when chained --
    the builds of the probe-side pipeline it extends. Leaves, repartition
    joins and unchained probes start fresh pipelines.
    """
    if isinstance(node, PhysJoin) and node.method == BROADCAST:
        own = node.right.est_bytes
        if node.chained:
            return own + pipeline_build_bytes(node.left)
        return own
    return 0.0


# ---------------------------------------------------------------------------
# Rendering (Figure 2/3 style)
# ---------------------------------------------------------------------------


def render_plan(node: PhysicalNode, indent: int = 0,
                show_estimates: bool = False) -> str:
    """Multi-line, indentation-based rendering of a physical plan."""
    pad = "  " * indent
    if isinstance(node, PhysLeaf):
        # Delta-scan leaves (incremental refresh plans read `T@deltaN`
        # files instead of the base table) get a visible marker so a
        # rendered refresh plan is distinguishable from a full recompute.
        delta = "Δ" if "@delta" in node.leaf.source_name else ""
        line = f"{pad}{delta}{node.leaf.describe()}"
        if show_estimates:
            line += f"  [~{node.est_rows:.0f} rows]"
        return line
    assert isinstance(node, PhysJoin)
    conditions = " AND ".join(c.describe() for c in node.conditions)
    marker = " (chained)" if node.chained else ""
    line = f"{pad}{node.symbol()}{marker} on {conditions}"
    if node.applied_predicates:
        preds = " AND ".join(p.signature() for p in node.applied_predicates)
        line += f" then filter {preds}"
    if show_estimates:
        line += f"  [~{node.est_rows:.0f} rows, cost {node.cost:.1f}]"
    return "\n".join(
        [line,
         render_plan(node.left, indent + 1, show_estimates),
         render_plan(node.right, indent + 1, show_estimates)]
    )


def compact_plan(node: PhysicalNode) -> str:
    """One-line rendering, e.g. ``((l ./r o) ./b c)`` -- paper style."""
    if isinstance(node, PhysLeaf):
        return node.label()
    assert isinstance(node, PhysJoin)
    operator = _SYMBOLS[node.method]
    if node.chained:
        operator += "+"
    return (f"({compact_plan(node.left)} {operator} "
            f"{compact_plan(node.right)})")


def plan_signature(node: PhysicalNode) -> str:
    """Stable identity of plan *shape* (method + structure, no estimates)."""
    return compact_plan(node)


@dataclass
class PlanSummary:
    """Derived facts about a plan, used by experiments and tests."""

    joins: int = 0
    repartition_joins: int = 0
    broadcast_joins: int = 0
    hybrid_joins: int = 0
    skew_joins: int = 0
    chained_joins: int = 0
    max_depth: int = 0
    is_left_deep: bool = True
    leaf_labels: tuple[str, ...] = field(default_factory=tuple)


def plan_diff(before: PhysicalNode, after: PhysicalNode) -> list[str]:
    """Human-readable differences between two plans of the same block.

    Used to narrate re-optimization points (the paper's Figure 2 story):
    which joins flipped method, which chains formed or broke, and which
    sub-plans were replaced by materialized intermediates.
    """
    changes: list[str] = []

    def joins_by_aliases(node: PhysicalNode) -> dict[frozenset[str],
                                                     PhysJoin]:
        found: dict[frozenset[str], PhysJoin] = {}

        def visit(current: PhysicalNode) -> None:
            if isinstance(current, PhysJoin):
                found[current.aliases] = current
                visit(current.left)
                visit(current.right)

        visit(node)
        return found

    def leaf_sources(node: PhysicalNode) -> dict[frozenset[str], str]:
        return {
            leaf.aliases: leaf.leaf.source_name for leaf in node.leaves()
        }

    before_joins = joins_by_aliases(before)
    after_joins = joins_by_aliases(after)
    for aliases, old in sorted(before_joins.items(),
                               key=lambda item: sorted(item[0])):
        label = "+".join(sorted(aliases))
        new = after_joins.get(aliases)
        if new is None:
            changes.append(f"join over {label} no longer exists "
                           f"(executed or re-ordered)")
            continue
        if old.method != new.method:
            changes.append(f"join over {label}: {old.method} -> "
                           f"{new.method}")
        if old.chained != new.chained:
            state = "chained" if new.chained else "unchained"
            changes.append(f"join over {label}: now {state}")
        if (old.build.aliases != new.build.aliases
                and old.method == new.method
                and old.method in HASH_BUILD_METHODS):
            changes.append(
                f"join over {label}: build side "
                f"{'+'.join(sorted(old.build.aliases))} -> "
                f"{'+'.join(sorted(new.build.aliases))}"
            )
    for aliases in sorted(set(after_joins) - set(before_joins),
                          key=sorted):
        changes.append(f"new join over {'+'.join(sorted(aliases))}")

    before_leaves = leaf_sources(before)
    after_leaves = leaf_sources(after)
    for aliases, source in sorted(after_leaves.items(),
                                  key=lambda item: sorted(item[0])):
        if aliases not in before_leaves:
            changes.append(
                f"{'+'.join(sorted(aliases))} materialized as {source}"
            )
    return changes


def summarize_plan(node: PhysicalNode) -> PlanSummary:
    summary = PlanSummary()

    def visit(current: PhysicalNode, depth: int) -> None:
        summary.max_depth = max(summary.max_depth, depth)
        if isinstance(current, PhysLeaf):
            summary.leaf_labels += (current.label(),)
            return
        assert isinstance(current, PhysJoin)
        summary.joins += 1
        if current.method == REPARTITION:
            summary.repartition_joins += 1
        elif current.method == HYBRID:
            summary.hybrid_joins += 1
        elif current.method == SKEW:
            summary.skew_joins += 1
        else:
            summary.broadcast_joins += 1
        if current.chained:
            summary.chained_joins += 1
        if not current.right.is_leaf:
            summary.is_left_deep = False
        visit(current.left, depth + 1)
        visit(current.right, depth + 1)

    visit(node, 0)
    return summary
