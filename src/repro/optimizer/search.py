"""Top-down branch-and-bound join enumeration (the Columbia-style search).

``JoinOptimizer`` optimizes one join block: it explores the memo top-down,
applies the implementation rules to every logical join of every group,
memoizes per-group winners, and finally applies the broadcast-chain rule to
the overall best plan (Section 5.2).

The search space covers all bushy, cartesian-free join orders. Costing uses
the paper's formulas over the byte-size estimates of the cardinality model.
With ``enable_pruning`` a candidate is abandoned as soon as its partial cost
exceeds the group's best-so-far (Columbia's bounding, safe because costs
are non-negative and monotone in the children).

The optimizer's own latency is *simulated* with an exponential model in the
number of leaves, calibrated to the paper's Section 6.2 observations: the
initial 8-relation optimization of Q8' accounts for about 7% of its
runtime while 4-6 relation blocks stay under 0.25%, and subsequent calls
(on partially executed, hence smaller, blocks) are much cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import OptimizerConfig
from repro.errors import OptimizerError
from repro.jaql.blocks import JoinBlock
from repro.optimizer.cardinality import CardinalityModel
from repro.optimizer.cost import JoinCostModel
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.memo import (
    GroupKey,
    LogicalJoin,
    LogicalLeaf,
    Memo,
    Winner,
)
from repro.optimizer.plans import (
    HASH_BUILD_METHODS,
    PhysJoin,
    PhysLeaf,
    PhysicalNode,
)
from repro.optimizer.rules import JoinContext, default_rules
from repro.stats.statistics import TableStats, composite_name

#: Simulated optimizer latency: seconds = BASE * GROWTH ** leaves.
OPTIMIZER_SECONDS_BASE = 0.002
OPTIMIZER_SECONDS_GROWTH = 3.0


def simulated_optimizer_seconds(leaf_count: int) -> float:
    return OPTIMIZER_SECONDS_BASE * OPTIMIZER_SECONDS_GROWTH ** leaf_count


@dataclass
class OptimizationResult:
    """Best plan plus search diagnostics."""

    plan: PhysicalNode
    cost: float
    groups_explored: int
    plans_considered: int
    simulated_seconds: float

    @property
    def signature(self) -> str:
        from repro.optimizer.plans import plan_signature

        return plan_signature(self.plan)


class JoinOptimizer:
    """Cost-based join enumeration for one join block."""

    def __init__(self, block: JoinBlock,
                 leaf_stats: dict[str, TableStats],
                 config: OptimizerConfig,
                 banned_broadcast: frozenset[frozenset[str]] = frozenset(),
                 feedback=None, feedback_context=None):
        self.block = block
        self.config = config
        self.graph = JoinGraph.build(block)
        self.graph.validate()
        self.cardinality = CardinalityModel(
            block, leaf_stats,
            feedback=feedback, feedback_context=feedback_context,
        )
        self.cost_model = JoinCostModel(config)
        self.rules = default_rules()
        self.memo = Memo(self.graph)
        #: alias sets whose broadcast join failed permanently at runtime;
        #: the dynamic executor replans with those candidates excluded so
        #: the search falls back to repartition (recovery, Section 1).
        self.banned_broadcast = banned_broadcast
        self._plans_considered = 0
        #: join-key columns that could clear the skew gate; contexts
        #: probing any other key skip all heavy-hitter work.
        self._skew_columns = (
            self.cardinality.heavy_columns(config.skew_key_fraction)
            if config.enable_skew_rule else frozenset()
        )

    # -- public -------------------------------------------------------------------

    def optimize(self) -> OptimizationResult:
        root_key: GroupKey = frozenset(range(self.graph.size))
        winner = self._optimize_group(root_key)
        plan = self.cost_model.apply_chain_rule(winner.plan)
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            groups_explored=self.memo.group_count,
            plans_considered=self._plans_considered,
            simulated_seconds=simulated_optimizer_seconds(len(
                self.block.leaves
            )),
        )

    # -- search -------------------------------------------------------------------

    def _optimize_group(self, key: GroupKey) -> Winner:
        group = self.memo.explore(key)
        if group.winner is not None:
            return group.winner

        best: Winner | None = None
        for expression in group.expressions:
            if isinstance(expression, LogicalLeaf):
                candidate = self._leaf_plan(expression.index)
                self._plans_considered += 1
                if best is None or candidate.cost < best.cost:
                    best = Winner(candidate.cost, candidate)
                continue

            assert isinstance(expression, LogicalJoin)
            left = self._optimize_group(expression.left)
            if (self.config.enable_pruning and best is not None
                    and left.cost >= best.cost):
                continue
            right = self._optimize_group(expression.right)
            if (self.config.enable_pruning and best is not None
                    and left.cost + right.cost >= best.cost):
                continue
            context = self._join_context(expression)
            for rule in self.rules:
                candidate = rule.apply(
                    left.plan, right.plan, context, self.cost_model
                )
                if candidate is None:
                    continue
                if self._broadcast_banned(candidate):
                    continue
                self._plans_considered += 1
                if best is None or candidate.cost < best.cost:
                    best = Winner(candidate.cost, candidate)

        if best is None:
            raise OptimizerError(
                f"no physical plan for group {sorted(key)}"
            )
        group.winner = best
        return best

    def _broadcast_banned(self, candidate: PhysicalNode) -> bool:
        """True when this hash-build join failed permanently at runtime.

        Subset semantics: banning ``{o, l}`` also rejects a broadcast of
        any *smaller* alias set of that failed join -- replanned jobs get
        different alias groupings and must not resurrect the dead build.
        The ban covers the hybrid join too: a build whose *spilling* form
        already overflowed pathologically (or was doomed by a fault) must
        fall back to the repartition join, not to another hash build.
        """
        if not self.banned_broadcast:
            return False
        if not isinstance(candidate, PhysJoin) \
                or candidate.method not in HASH_BUILD_METHODS:
            return False
        return any(candidate.aliases <= banned
                   for banned in self.banned_broadcast)

    # -- plan pieces ---------------------------------------------------------------

    def _leaf_plan(self, index: int) -> PhysicalNode:
        leaf = self.graph.leaf(index)
        stats = self.cardinality.leaf_stats(leaf)
        return PhysLeaf(
            aliases=leaf.aliases,
            est_rows=max(stats.row_count, 0.0),
            est_bytes=max(stats.size_bytes, 0.0),
            cost=0.0,
            leaf=leaf,
        )

    def _join_context(self, expression: LogicalJoin) -> JoinContext:
        left_aliases = self.graph.aliases_of(expression.left)
        right_aliases = self.graph.aliases_of(expression.right)
        combined = left_aliases | right_aliases
        estimate = self.cardinality.estimate(combined)
        conditions = self.block.conditions_between(left_aliases,
                                                   right_aliases)
        applied = tuple(
            predicate for predicate in self.block.non_local_predicates
            if predicate.references() <= combined
            and not predicate.references() <= left_aliases
            and not predicate.references() <= right_aliases
        )
        probe_heavy: tuple = ()
        build_heavy: tuple = ()
        build_key_distinct = 1.0
        if conditions and self._skew_columns:
            probe_refs = [condition.side_for(left_aliases)
                          for condition in conditions]
            if len(probe_refs) == 1:
                probe_hot = probe_refs[0].qualified in self._skew_columns
            else:  # composite keys profile under their composite name
                probe_hot = composite_name(
                    ref.qualified for ref in probe_refs
                ) in self._skew_columns
            if probe_hot:
                probe_heavy = self.cardinality.heavy_hitters(probe_refs)
            if probe_heavy:
                build_refs = [condition.side_for(right_aliases)
                              for condition in conditions]
                build_heavy = self.cardinality.heavy_hitters(build_refs)
                build_key_distinct = self.cardinality.key_distinct_values(
                    build_refs
                )
        return JoinContext(
            aliases=combined,
            est_rows=estimate.rows,
            est_bytes=estimate.bytes,
            conditions=conditions,
            applied_predicates=applied,
            probe_heavy=probe_heavy,
            build_heavy=build_heavy,
            build_key_distinct=build_key_distinct,
        )
