"""Join cost formulas (paper Section 5.2, plus the spill variant).

With ``|X|`` the estimated byte size of relation ``X``:

* repartition join:  ``C(R ./r S) = crep * (|R| + |S|) + cout * |R ./ S|``
* broadcast join:    ``C(R ./b S) = cprobe * |R| + cbuild * |S| + cout * |R ./ S|``
* chained broadcasts over probe ``R`` with builds ``S1..Sk``:
  ``cprobe * |R| + cbuild * (|S1|+..+|Sk|) + cout * |R ./ S1 ./ .. ./ Sk|``
  (the intermediate results of the chain are neither written nor re-read);
* hybrid hash join (build side up to ``spill_margin_factor x Mmax``):
  the broadcast formula plus ``cspill * f * (|R| + |S|)`` where ``f`` is
  the fraction of the build that does not fit in memory -- the spilled
  build partitions are written and re-read, and the matching fraction of
  the probe side makes a second pass through disk (Grace hash join).

The constants satisfy ``crep >> cspill > cprobe > cbuild > cout``, so
broadcast joins are preferred whenever the build side fits in memory, a
marginally oversized build degrades to the spilling hybrid join, and
heavily oversized builds fall back to the repartition join. Leaves cost
nothing: reading inputs is charged by the join consuming them, as in the
paper's formulas.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import OptimizerConfig
from repro.errors import PlanError
from repro.optimizer.plans import (
    BROADCAST,
    HYBRID,
    SKEW,
    PhysJoin,
    PhysLeaf,
    PhysicalNode,
)


class JoinCostModel:
    """Evaluates the paper's cost formulas under an :class:`OptimizerConfig`."""

    def __init__(self, config: OptimizerConfig):
        self.config = config

    # -- per-operator costs (used during search, before chain marking) --------

    def repartition_cost(self, left_bytes: float, right_bytes: float,
                         out_bytes: float) -> float:
        cfg = self.config
        return (cfg.crep * (left_bytes + right_bytes)
                + cfg.cout * out_bytes + cfg.cjob)

    def broadcast_cost(self, probe_bytes: float, build_bytes: float,
                       out_bytes: float) -> float:
        cfg = self.config
        return (cfg.cprobe * probe_bytes + cfg.cbuild * build_bytes
                + cfg.cout * out_bytes + cfg.cjob)

    def hybrid_cost(self, probe_bytes: float, build_bytes: float,
                    out_bytes: float) -> float:
        cfg = self.config
        fraction = self.spilled_fraction(build_bytes)
        return (cfg.cprobe * probe_bytes + cfg.cbuild * build_bytes
                + cfg.cspill * fraction * (probe_bytes + build_bytes)
                + cfg.cout * out_bytes + cfg.cjob)

    def skew_cost(self, probe_bytes: float, build_bytes: float,
                  out_bytes: float, heavy_probe_fraction: float,
                  heavy_build_fraction: float) -> float:
        """Skew join: heavy fractions pay broadcast rates, the tail
        repartitions, all within one job.

        Probe bytes carrying heavy keys are scanned and probed map-side
        (``cprobe``); the remaining tail of both sides shuffles at
        ``crep``; the heavy-key build table is filtered out of a full
        scan of the build side, so ``cbuild`` is charged on all of it.
        """
        cfg = self.config
        tail_probe = (1.0 - heavy_probe_fraction) * probe_bytes
        tail_build = (1.0 - heavy_build_fraction) * build_bytes
        return (cfg.crep * (tail_probe + tail_build)
                + cfg.cprobe * heavy_probe_fraction * probe_bytes
                + cfg.cbuild * build_bytes
                + cfg.cout * out_bytes + cfg.cjob)

    def fits_in_memory(self, build_bytes: float) -> bool:
        """Memory gate for the broadcast implementation rule."""
        budget = self.config.max_broadcast_bytes
        return build_bytes * self.config.broadcast_safety_factor <= budget

    def fits_with_spill(self, build_bytes: float) -> bool:
        """Memory gate for the hybrid rule: within the spill margin."""
        budget = (self.config.max_broadcast_bytes
                  * self.config.spill_margin_factor)
        return build_bytes * self.config.broadcast_safety_factor <= budget

    def spilled_fraction(self, build_bytes: float) -> float:
        """Estimated fraction of a hybrid build that overflows ``Mmax``."""
        demand = build_bytes * self.config.broadcast_safety_factor
        if demand <= 0:
            return 0.0
        return max(0.0, 1.0 - self.config.max_broadcast_bytes / demand)

    # -- chain rule (Section 5.2, "new rule ... dictates which joins
    #    should be chained") ---------------------------------------------------

    def apply_chain_rule(self, plan: PhysicalNode) -> PhysicalNode:
        """Mark chainable broadcast joins and re-cost the whole plan.

        A broadcast join chains with the broadcast join producing its probe
        input when every build side of the resulting chain fits in memory
        simultaneously (budget ``Mmax``). Chained joins skip the write+read
        of the intermediate probe result.
        """
        marked, _ = self._mark(plan)
        recosted, _ = self._recost(marked)
        return recosted

    def _mark(self, node: PhysicalNode) -> tuple[PhysicalNode, float]:
        """Returns (marked node, bytes of builds in the current pipeline)."""
        if isinstance(node, PhysLeaf):
            return node, 0.0
        if not isinstance(node, PhysJoin):
            raise PlanError(f"unknown plan node {type(node).__name__}")
        if node.method != BROADCAST:
            left, _ = self._mark(node.left)
            right, _ = self._mark(node.right)
            return replace(node, left=left, right=right, chained=False), 0.0

        probe, chain_bytes = self._mark(node.left)
        build, _ = self._mark(node.right)
        budget = self.config.max_broadcast_bytes
        can_chain = (
            self.config.enable_chain_rule
            and isinstance(probe, PhysJoin)
            and probe.method == BROADCAST
            and chain_bytes + build.est_bytes <= budget
        )
        new_chain_bytes = (
            chain_bytes + build.est_bytes if can_chain else build.est_bytes
        )
        marked = replace(
            node, left=probe, right=build, chained=can_chain
        )
        return marked, new_chain_bytes

    def _recost(self, node: PhysicalNode) -> tuple[PhysicalNode, float]:
        """Returns (node with updated cumulative cost, its output bytes)."""
        cfg = self.config
        if isinstance(node, PhysLeaf):
            return replace(node, cost=0.0), node.est_bytes
        assert isinstance(node, PhysJoin)
        left, left_bytes = self._recost(node.left)
        right, right_bytes = self._recost(node.right)
        if node.method == BROADCAST:
            cost = (left.cost + right.cost
                    + cfg.cbuild * right_bytes
                    + cfg.cout * node.est_bytes)
            if node.chained:
                # The probe intermediate is neither materialized nor
                # re-read: remove its cout, and do not charge cprobe or a
                # new job again.
                cost -= cfg.cout * left_bytes
            else:
                cost += cfg.cprobe * left_bytes + cfg.cjob
        elif node.method == HYBRID:
            cost = (left.cost + right.cost
                    + self.hybrid_cost(left_bytes, right_bytes,
                                       node.est_bytes))
        elif node.method == SKEW:
            cost = (left.cost + right.cost
                    + self.skew_cost(left_bytes, right_bytes,
                                     node.est_bytes,
                                     node.heavy_probe_fraction,
                                     node.heavy_build_fraction))
        else:
            cost = (left.cost + right.cost
                    + cfg.crep * (left_bytes + right_bytes)
                    + cfg.cout * node.est_bytes + cfg.cjob)
        return (
            replace(node, left=left, right=right, cost=cost),
            node.est_bytes,
        )
