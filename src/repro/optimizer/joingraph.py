"""Join graph over the leaves of a join block.

Nodes are block leaves (atomic units of enumeration: base scans or
intermediate results); an edge connects two leaves when at least one join
condition spans them. The optimizer only considers *connected* sub-plans
(no cartesian products, like Jaql's own heuristic, Section 2.2.2) and
rejects cyclic graphs the way the paper excludes TPC-H Q5 ("cyclic join
conditions that are not currently supported by our optimizer").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedQueryError
from repro.jaql.blocks import BlockLeaf, JoinBlock


@dataclass(frozen=True)
class JoinGraph:
    """Adjacency over leaf indices for one join block."""

    block: JoinBlock
    adjacency: tuple[frozenset[int], ...]

    @staticmethod
    def build(block: JoinBlock) -> "JoinGraph":
        leaf_of_alias: dict[str, int] = {}
        for index, leaf in enumerate(block.leaves):
            for alias in leaf.aliases:
                leaf_of_alias[alias] = index
        neighbors: list[set[int]] = [set() for _ in block.leaves]
        for condition in block.conditions:
            left = leaf_of_alias[condition.left.alias]
            right = leaf_of_alias[condition.right.alias]
            if left == right:
                continue  # condition internal to an intermediate leaf
            neighbors[left].add(right)
            neighbors[right].add(left)
        return JoinGraph(
            block, tuple(frozenset(adj) for adj in neighbors)
        )

    # -- basic structure -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.adjacency)

    def leaf(self, index: int) -> BlockLeaf:
        return self.block.leaves[index]

    def neighbors_of_set(self, members: frozenset[int]) -> frozenset[int]:
        adjacent: set[int] = set()
        for index in members:
            adjacent.update(self.adjacency[index])
        return frozenset(adjacent - members)

    def is_connected(self, members: frozenset[int]) -> bool:
        if not members:
            return False
        start = next(iter(members))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self.adjacency[node]:
                if neighbor in members and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == set(members)

    def edges_between(self, left: frozenset[int],
                      right: frozenset[int]) -> bool:
        return any(
            bool(self.adjacency[index] & right) for index in left
        )

    # -- validation ------------------------------------------------------------------

    def validate(self) -> None:
        """Reject disconnected blocks and cyclic join graphs."""
        all_members = frozenset(range(self.size))
        if self.size > 1 and not self.is_connected(all_members):
            raise UnsupportedQueryError(
                "join block is disconnected: a cartesian product would be "
                "required"
            )
        if self._has_cycle():
            raise UnsupportedQueryError(
                "cyclic join conditions are not supported by the optimizer "
                "(the paper excludes TPC-H Q5 for the same reason)"
            )

    def _has_cycle(self) -> bool:
        # Undirected cycle detection via iterative DFS with parent tracking.
        visited: set[int] = set()
        for root in range(self.size):
            if root in visited:
                continue
            stack: list[tuple[int, int]] = [(root, -1)]
            while stack:
                node, parent = stack.pop()
                if node in visited:
                    return True
                visited.add(node)
                for neighbor in self.adjacency[node]:
                    if neighbor == parent:
                        continue
                    if neighbor in visited:
                        return True
                    stack.append((neighbor, node))
        return False

    # -- alias helpers ------------------------------------------------------------------

    def aliases_of(self, members: frozenset[int]) -> frozenset[str]:
        merged: set[str] = set()
        for index in members:
            merged.update(self.leaf(index).aliases)
        return frozenset(merged)
