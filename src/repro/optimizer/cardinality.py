"""Cardinality and selectivity estimation (textbook formulas).

The paper's optimizer "estimates join result cardinalities using textbook
techniques, however, it operates on very accurate input cardinality
estimates for local sub-queries" (Section 1): the leaf statistics come from
pilot runs or prior execution steps, and everything above the leaves uses
Selinger-style formulas [35]:

* equi-join selectivity ``1 / max(dv(a), dv(b))`` per condition;
* independence across conditions and predicates;
* UDF predicates are *opaque*: selectivity defaults to 1.0 until their
  output is observed (which is exactly what re-optimization fixes for Q8').

Estimates are computed per alias-set, which makes them independent of the
join order used to reach a set -- a requirement for memo-based search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StatisticsError
from repro.jaql.blocks import BlockLeaf, JoinBlock
from repro.jaql.expr import (
    And,
    ColumnRef,
    Comparison,
    Or,
    Predicate,
    UdfPredicate,
)
from repro.stats.statistics import TableStats, composite_name

#: System R style default selectivities when statistics are unusable.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
#: Opaque predicates (UDFs) pass everything until observed otherwise.
UDF_SELECTIVITY = 1.0


@dataclass(frozen=True)
class GroupEstimate:
    """Estimated output of joining one alias-set."""

    rows: float
    bytes: float


class CardinalityModel:
    """Estimates per alias-set over a join block and its leaf statistics."""

    def __init__(self, block: JoinBlock, leaf_stats: dict[str, TableStats],
                 feedback=None, feedback_context=None):
        """``leaf_stats`` maps each leaf's :meth:`BlockLeaf.signature` to the
        statistics of the (virtual) relation it produces.

        ``feedback``/``feedback_context`` (a
        :class:`repro.feedback.FeedbackStore` and the block's
        :class:`repro.feedback.BlockFeedbackContext`) enable learned
        multiplicative corrections on multi-leaf group estimates; with
        either absent the model is the paper's textbook estimator.
        """
        from repro.stats.statistics import requalify_stats

        self.block = block
        self._feedback = (feedback if feedback is not None
                          and feedback_context is not None else None)
        self._feedback_context = feedback_context
        self._stats_by_alias: dict[str, TableStats] = {}
        self._leaf_by_alias: dict[str, BlockLeaf] = {}
        for leaf in block.leaves:
            try:
                stats = leaf_stats[leaf.signature()]
            except KeyError:
                raise StatisticsError(
                    f"missing statistics for leaf {leaf.describe()} "
                    f"(signature {leaf.signature()!r})"
                ) from None
            if leaf.is_base:
                # Shared-signature leaves (self-joins) reuse one statistics
                # entry whose columns carry the collecting leaf's alias.
                stats = requalify_stats(stats, leaf.alias)
            for alias in leaf.aliases:
                self._stats_by_alias[alias] = stats
                self._leaf_by_alias[alias] = leaf
        self._cache: dict[frozenset[str], GroupEstimate] = {}
        #: heavy-hitter / key-DV lookups keyed by the refs' qualified
        #: names -- the memo search derives the same join sides many
        #: times, and the underlying statistics never change mid-search.
        self._heavy_cache: dict[tuple[str, ...],
                                tuple[tuple[tuple, float], ...]] = {}
        self._key_dv_cache: dict[tuple[str, ...], float] = {}

    # -- leaf-level --------------------------------------------------------------

    def leaf_stats(self, leaf: BlockLeaf) -> TableStats:
        return self._stats_by_alias[next(iter(leaf.aliases))]

    def distinct_values(self, ref: ColumnRef) -> float:
        stats = self._stats_by_alias.get(ref.alias)
        if stats is None:
            raise StatisticsError(f"no statistics for alias {ref.alias!r}")
        return stats.distinct_values(ref.qualified)

    def heavy_columns(self, threshold: float) -> frozenset[str]:
        """Qualified column names whose profile reaches ``threshold``.

        One pass over the (few) leaf statistics at optimizer construction;
        lets the search skip all per-context heavy-hitter work for probe
        keys that cannot possibly clear the skew gate -- which is every
        fact-table join key of every TPC-H block at our scales.
        """
        result = set()
        seen: set[int] = set()
        for stats in self._stats_by_alias.values():
            if id(stats) in seen:
                continue
            seen.add(id(stats))
            for name, column in stats.columns.items():
                if any(fraction >= threshold
                       for _, fraction in column.heavy_hitters):
                    result.add(name)
        return frozenset(result)

    def heavy_hitters(
        self, refs: list[ColumnRef]
    ) -> tuple[tuple[tuple, float], ...]:
        """Heavy join-key values of one join side, as ``(key, fraction)``.

        ``refs`` is the side's key in join-condition order; keys come back
        as value tuples in that same order (what the compiler's mappers
        evaluate per row). Multi-column keys need measured composite
        statistics -- their values are stored ordered by sorted column
        name and are permuted back here. Keys containing NULL never join
        and are dropped. Returns () when the side spans several leaves
        per-column or no frequency profile survived.
        """
        if not refs or len({ref.alias for ref in refs}) != 1:
            return ()
        cache_key = tuple(ref.qualified for ref in refs)
        cached = self._heavy_cache.get(cache_key)
        if cached is not None:
            return cached
        result = self._heavy_hitters_uncached(refs)
        self._heavy_cache[cache_key] = result
        return result

    def _heavy_hitters_uncached(
        self, refs: list[ColumnRef]
    ) -> tuple[tuple[tuple, float], ...]:
        stats = self._stats_by_alias.get(refs[0].alias)
        if stats is None:
            return ()
        if len(refs) == 1:
            column = stats.column(refs[0].qualified)
            if column is None:
                return ()
            return tuple(
                ((value,), fraction)
                for value, fraction in column.heavy_hitters
                if value is not None
            )
        composite = stats.column(
            composite_name(ref.qualified for ref in refs)
        )
        if composite is None:
            return ()
        sorted_names = sorted(ref.qualified for ref in refs)
        positions = [sorted_names.index(ref.qualified) for ref in refs]
        result = []
        for value, fraction in composite.heavy_hitters:
            if not isinstance(value, tuple) or len(value) != len(refs):
                continue
            key = tuple(value[position] for position in positions)
            if any(part is None for part in key):
                continue
            result.append((key, fraction))
        return tuple(result)

    def key_distinct_values(self, refs: list[ColumnRef]) -> float:
        """Distinct values of one side's (possibly composite) join key."""
        if not refs:
            return 1.0
        cache_key = tuple(ref.qualified for ref in refs)
        cached = self._key_dv_cache.get(cache_key)
        if cached is not None:
            return cached
        result = self._key_distinct_uncached(refs)
        self._key_dv_cache[cache_key] = result
        return result

    def _key_distinct_uncached(self, refs: list[ColumnRef]) -> float:
        stats = self._stats_by_alias.get(refs[0].alias)
        if stats is None:
            return 1.0
        if len(refs) > 1:
            composite = stats.column(
                composite_name(ref.qualified for ref in refs)
            )
            if composite is not None and composite.distinct_values > 0:
                return min(composite.distinct_values,
                           max(stats.row_count, 1.0))
        product = 1.0
        for ref in refs:
            product *= max(self.distinct_values(ref), 1.0)
        return min(product, max(stats.row_count, 1.0))

    # -- group-level -------------------------------------------------------------

    def estimate(self, aliases: frozenset[str]) -> GroupEstimate:
        """Estimated rows/bytes of the join of ``aliases`` with all
        applicable conditions and non-local predicates applied."""
        cached = self._cache.get(aliases)
        if cached is not None:
            return cached

        leaves: list[BlockLeaf] = []
        seen: set[str] = set()
        for alias in aliases:
            leaf = self._leaf_by_alias.get(alias)
            if leaf is None:
                raise StatisticsError(f"alias {alias!r} not in block")
            if leaf.aliases <= aliases:
                if not (leaf.aliases & seen):
                    leaves.append(leaf)
                    seen.update(leaf.aliases)
            else:
                raise StatisticsError(
                    f"alias set {sorted(aliases)} splits intermediate leaf "
                    f"{leaf.describe()}"
                )

        rows = 1.0
        width = 0.0
        for leaf in leaves:
            stats = self.leaf_stats(leaf)
            rows *= max(stats.row_count, 0.0)
            width += stats.avg_row_size

        if len(leaves) > 1:
            for left_refs, right_refs in self._condition_groups(aliases):
                rows *= self._join_selectivity(left_refs, right_refs)

        for predicate in self.block.non_local_predicates:
            if predicate.references() <= aliases:
                rows *= self.predicate_selectivity(predicate)

        estimate = GroupEstimate(rows, rows * max(width, 1.0))
        if len(leaves) > 1 and self._feedback is not None:
            estimate = self._apply_correction(aliases, estimate)
        self._cache[aliases] = estimate
        return estimate

    def _apply_correction(self, aliases: frozenset[str],
                          estimate: GroupEstimate) -> GroupEstimate:
        """Multiply in the feedback store's learned correction, if any.

        Only multi-leaf groups are corrected: leaf estimates come from
        pilot runs / exact intermediates and are the accurate inputs the
        paper's argument rests on -- the learnable error lives in the
        join/UDF selectivity formulas above them.
        """
        from repro.feedback.keys import group_key

        key = group_key(self._feedback_context, self.block, aliases)
        if key is None:
            return estimate
        rows_factor, bytes_factor = self._feedback.correction(key)
        if rows_factor == 1.0 and bytes_factor == 1.0:
            return estimate
        return GroupEstimate(estimate.rows * rows_factor,
                             estimate.bytes * bytes_factor)

    def _condition_groups(
        self, aliases: frozenset[str]
    ) -> list[tuple[list[ColumnRef], list[ColumnRef]]]:
        """Join conditions inside ``aliases``, grouped per leaf pair.

        Conditions between the same two leaves form one *composite* key
        (e.g. partsupp x lineitem joins on partkey AND suppkey); estimating
        them independently would underestimate quadratically.
        """
        grouped: dict[tuple[int, int], tuple[list[ColumnRef],
                                             list[ColumnRef]]] = {}
        leaf_ids = {id(leaf): index
                    for index, leaf in enumerate(self.block.leaves)}
        for condition in self.block.conditions:
            if not condition.aliases() <= aliases:
                continue
            left_leaf = self._leaf_by_alias[condition.left.alias]
            right_leaf = self._leaf_by_alias[condition.right.alias]
            if left_leaf is right_leaf:
                continue  # internal to one intermediate leaf: pre-applied
            key = tuple(sorted((leaf_ids[id(left_leaf)],
                                leaf_ids[id(right_leaf)])))
            lists = grouped.setdefault(key, ([], []))
            if leaf_ids[id(left_leaf)] == key[0]:
                lists[0].append(condition.left)
                lists[1].append(condition.right)
            else:
                lists[0].append(condition.right)
                lists[1].append(condition.left)
        return list(grouped.values())

    def _join_selectivity(self, left_refs: list[ColumnRef],
                          right_refs: list[ColumnRef]) -> float:
        """Composite-key equi-join selectivity: ``1 / max(dv_L, dv_R)``.

        The distinct count of a composite key is the product of per-column
        counts, capped by the relation's cardinality (a tuple cannot have
        more distinct values than there are rows) -- the standard Selinger
        refinement for multi-column join predicates.
        """
        def side_dv(refs: list[ColumnRef]) -> float:
            stats = self._stats_by_alias[refs[0].alias]
            if len(refs) > 1:
                # Prefer measured statistics on the composite key (pilot
                # runs collect them for multi-column join conditions).
                composite = stats.column(
                    composite_name(ref.qualified for ref in refs)
                )
                if composite is not None and composite.distinct_values > 0:
                    return min(composite.distinct_values,
                               max(stats.row_count, 1.0))
            product = 1.0
            for ref in refs:
                product *= max(self.distinct_values(ref), 1.0)
            return min(product, max(stats.row_count, 1.0))

        return 1.0 / max(side_dv(left_refs), side_dv(right_refs), 1.0)

    # -- predicate selectivity (for non-local, non-UDF predicates) -----------------

    def predicate_selectivity(self, predicate: Predicate) -> float:
        if isinstance(predicate, UdfPredicate):
            return UDF_SELECTIVITY
        if isinstance(predicate, And):
            product = 1.0
            for part in predicate.parts:
                product *= self.predicate_selectivity(part)
            return product
        if isinstance(predicate, Or):
            miss = 1.0
            for part in predicate.parts:
                miss *= 1.0 - self.predicate_selectivity(part)
            return 1.0 - miss
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate)
        return DEFAULT_RANGE_SELECTIVITY

    def _comparison_selectivity(self, predicate: Comparison) -> float:
        column = predicate.left
        stats = self._stats_by_alias.get(column.alias)
        column_stats = (
            stats.column(column.qualified) if stats is not None else None
        )
        if isinstance(predicate.right, ColumnRef):
            if predicate.op == "=":
                return self._join_selectivity([column], [predicate.right])
            return DEFAULT_RANGE_SELECTIVITY
        if predicate.op == "=":
            if column_stats is not None and column_stats.distinct_values > 0:
                return 1.0 / column_stats.distinct_values
            return DEFAULT_EQ_SELECTIVITY
        if predicate.op == "!=":
            if column_stats is not None and column_stats.distinct_values > 0:
                return 1.0 - 1.0 / column_stats.distinct_values
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        return self._range_selectivity(predicate, column_stats)

    def _range_selectivity(self, predicate: Comparison,
                           column_stats) -> float:
        literal = predicate.right
        if (column_stats is None
                or not isinstance(literal, (int, float))
                or isinstance(literal, bool)):
            return DEFAULT_RANGE_SELECTIVITY
        if column_stats.histogram is not None:
            # Equi-depth histogram (Section 4.3's "additional statistics"):
            # robust to skew where min/max interpolation is not.
            fraction = column_stats.histogram.fraction_below(float(literal))
            if predicate.op in ("<", "<="):
                return max(fraction, 1e-6)
            return max(1.0 - fraction, 1e-6)
        if (not isinstance(column_stats.min_value, (int, float))
                or not isinstance(column_stats.max_value, (int, float))):
            return DEFAULT_RANGE_SELECTIVITY
        low = float(column_stats.min_value)
        high = float(column_stats.max_value)
        if high <= low:
            return DEFAULT_RANGE_SELECTIVITY
        fraction = (float(literal) - low) / (high - low)
        fraction = min(1.0, max(0.0, fraction))
        if predicate.op in ("<", "<="):
            return max(fraction, 1e-6)
        return max(1.0 - fraction, 1e-6)
