"""Memo structure (Cascades/Columbia style, Section 5.2).

The memo holds one :class:`Group` per alias-connected set of block leaves.
A group's logical expressions are the ways to produce that set: a single
leaf, or a join of two disjoint connected sub-groups with at least one join
condition between them (no cartesian products). Exploring a group
enumerates exactly the closure that Columbia's join commutativity and
associativity rules generate over an acyclic join graph, including every
bushy shape -- the paper relies on Columbia producing bushy plans
(Section 2.2.3).

Winners (best physical plan per group) are attached by the search in
:mod:`repro.optimizer.search`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OptimizerError
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plans import PhysicalNode

GroupKey = frozenset[int]


@dataclass(frozen=True)
class LogicalLeaf:
    """Get(leaf): scan one block leaf."""

    index: int


@dataclass(frozen=True)
class LogicalJoin:
    """Join(left group, right group). Conditions are derived from the block."""

    left: GroupKey
    right: GroupKey


LogicalExpr = LogicalLeaf | LogicalJoin


@dataclass
class Winner:
    cost: float
    plan: PhysicalNode


@dataclass
class Group:
    """One equivalence class: all plans producing the same leaf set."""

    key: GroupKey
    expressions: list[LogicalExpr] = field(default_factory=list)
    explored: bool = False
    winner: Winner | None = None


class Memo:
    """Group table plus the split-enumeration exploration."""

    def __init__(self, graph: JoinGraph):
        self.graph = graph
        self._groups: dict[GroupKey, Group] = {}

    # -- access ---------------------------------------------------------------

    def group(self, key: GroupKey) -> Group:
        if not key:
            raise OptimizerError("empty group key")
        existing = self._groups.get(key)
        if existing is None:
            existing = Group(key)
            self._groups[key] = existing
        return existing

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def groups(self) -> list[Group]:
        return list(self._groups.values())

    # -- exploration -------------------------------------------------------------

    def explore(self, key: GroupKey) -> Group:
        """Populate the group's logical expressions (idempotent)."""
        group = self.group(key)
        if group.explored:
            return group
        if len(key) == 1:
            group.expressions.append(LogicalLeaf(next(iter(key))))
            group.explored = True
            return group

        members = sorted(key)
        anchor = members[0]
        rest = members[1:]
        # Enumerate proper subsets via bitmask over the non-anchor members;
        # generating S1 with the anchor and taking both (S1,S2) and (S2,S1)
        # covers both join orders (build-side choice matters for broadcast).
        for mask in range(0, 1 << len(rest)):
            subset = frozenset(
                [anchor] + [rest[i] for i in range(len(rest))
                            if mask & (1 << i)]
            )
            complement = key - subset
            if not complement:
                continue
            if not self.graph.is_connected(subset):
                continue
            if not self.graph.is_connected(complement):
                continue
            if not self.graph.edges_between(subset, complement):
                continue
            group.expressions.append(LogicalJoin(subset, complement))
            group.expressions.append(LogicalJoin(complement, subset))
            # Make sure child groups exist so the search can recurse.
            self.group(subset)
            self.group(complement)
        if not group.expressions:
            raise OptimizerError(
                f"group {sorted(key)} admits no connected split; "
                f"cartesian products are not supported"
            )
        group.explored = True
        return group
