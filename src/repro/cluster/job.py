"""MapReduce job specification and task-side context.

A :class:`MapReduceJob` is what the Jaql compiler produces (one per
repartition join, one per broadcast-join chain, one per pilot run) and what
the cluster runtime executes. Mappers and reducers are plain Python
callables that receive a :class:`TaskContext` -- the moral equivalent of
Hadoop's ``Mapper.Context`` -- through which they emit records, bump
counters, charge simulated UDF CPU time, and check the pilot runs' global
early-stop counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.data.schema import Schema, estimate_value_size
from repro.data.table import Row
from repro.errors import JobError
from repro.storage.dfs import Split

__all__ = [
    "BatchEmit",
    "BatchMapper",
    "BatchReducer",
    "BroadcastBuild",
    "MapReduceJob",
    "Mapper",
    "Reducer",
    "TaskContext",
    "estimate_value_size",
]


class TaskContext:
    """Per-task execution context handed to mappers and reducers."""

    def __init__(self, should_stop: Callable[[], bool] | None = None,
                 on_emit: Callable[[int], None] | None = None):
        self._emitted: list[tuple[Any, Row]] = []
        self.extra_cpu_seconds = 0.0
        self._should_stop = should_stop
        self._on_emit = on_emit

    # -- record emission ------------------------------------------------------

    def emit(self, key: Any, value: Row) -> None:
        """Emit one keyed record (key is None in map-only jobs)."""
        self._emitted.append((key, value))
        if self._on_emit is not None:
            self._on_emit(1)

    def emit_all(self, key: Any, values: list[Row]) -> None:
        """Emit a batch of records under one key in a single call.

        Equivalent to ``emit(key, v)`` per value, but the emit callback
        (the pilot runs' shared output counter) fires once with the batch
        size -- one coordination round-trip per split instead of one per
        record, as a real task would batch its counter updates.
        """
        if not values:
            return
        self._emitted.extend((key, value) for value in values)
        if self._on_emit is not None:
            self._on_emit(len(values))

    @property
    def emitted(self) -> list[tuple[Any, Row]]:
        return self._emitted

    # -- simulated cost hooks --------------------------------------------------

    def charge_cpu(self, seconds: float) -> None:
        """Account extra simulated CPU time (expensive predicates / UDFs)."""
        if seconds < 0:
            raise JobError("cannot charge negative CPU time")
        self.extra_cpu_seconds += seconds

    # -- early termination (pilot runs) ----------------------------------------

    def should_stop(self) -> bool:
        """True once the job-global stop condition holds (PILR k-counter)."""
        if self._should_stop is None:
            return False
        return self._should_stop()


#: A mapper processes one split: (context, source file name, rows).
Mapper = Callable[[TaskContext, str, list[Row]], None]
#: A reducer processes one key group: (context, key, values).
Reducer = Callable[[TaskContext, Any, list[Row]], None]


@dataclass
class BatchEmit:
    """Output of one batch mapper/reducer call (the columnar task contract).

    ``sizes[i]`` must equal ``estimate_value_size(rows[i])``: producers
    derive sizes in O(1) from their inputs (merged-row arithmetic, carried
    split sizes) so the runtime's byte counters match the row engine
    without re-walking any dict. ``keys`` is None for map-only emission,
    else parallel to ``rows``. ``columns`` optionally exposes the output
    batch (``column(name)``) so statistics ingest straight from columns.
    """

    rows: list[Row]
    sizes: list[int]
    keys: list[Any] | None = None
    columns: Any | None = None


#: A batch mapper processes one whole split:
#: (context, source file name, column batch) -> BatchEmit.
BatchMapper = Callable[[TaskContext, str, Any], BatchEmit]
#: A batch reducer processes one partition's key groups in arrival order:
#: (context, [(frozen key, values, value sizes)]) -> BatchEmit.
BatchReducer = Callable[
    [TaskContext, list[tuple[Any, list[Row], list[int]]]], BatchEmit
]


@dataclass
class BroadcastBuild:
    """One broadcast-join build side attached to a job.

    The runtime reads ``input_file`` (accounting the read), applies
    ``loader`` -- which qualifies rows and applies the build side's local
    predicates while the hash table is loaded, exactly like Jaql's broadcast
    join -- and stores the resulting rows in :attr:`rows` for the job's
    mapper closures to probe. The memory check applies to the *loaded*
    (post-predicate) size, since that is what actually occupies task memory.
    """

    input_file: str
    loader: Callable[[list[Row]], list[Row]]
    description: str = ""
    rows: list[Row] | None = None
    loaded_bytes: int = 0
    #: True when the plan chose the spillable hybrid hash join for this
    #: build: overflowing task memory is *expected* and handled by
    #: partitioning to disk rather than treated as a misestimate.
    spillable: bool = False
    #: optimizer's byte estimate for the loaded build (0 when unknown);
    #: feeds the job's declared memory demand before execution.
    declared_bytes: int = 0

    def load(self, raw_rows: list[Row]) -> None:
        self.rows = self.loader(raw_rows)
        self.loaded_bytes = sum(estimate_value_size(row) for row in self.rows)

    def built_rows(self) -> list[Row]:
        if self.rows is None:
            raise JobError(
                f"broadcast build over {self.input_file!r} was not loaded"
            )
        return self.rows


@dataclass
class MapReduceJob:
    """Everything the runtime needs to execute one job.

    ``splits`` overrides the default "all splits of all inputs" assignment;
    pilot runs use it to execute over a sampled subset (Section 4.2).
    ``broadcast_inputs`` are DFS files loaded into every task's memory
    (broadcast-join build sides); the runtime enforces the no-spill memory
    limit and fails the job on overflow, like Jaql (Section 2.2.1).
    """

    name: str
    inputs: list[str]
    mapper: Mapper
    output_name: str
    output_schema: Schema
    reducer: Reducer | None = None
    num_reducers: int = 0
    splits: list[Split] | None = None
    broadcast_builds: list[BroadcastBuild] = field(default_factory=list)
    #: output columns to collect online statistics for (Section 5.4);
    #: empty means no statistics collection for this job.
    stats_columns: list[str] = field(default_factory=list)
    #: free-form description used in plan printouts and experiment logs.
    description: str = ""
    #: declared build/buffer memory demand (bytes), derived from collected
    #: statistics by the compiler; the slot scheduler charges it against
    #: the cluster memory pool while the job runs. 0 means "negligible"
    #: (pilot runs, plain scans) and never waits for memory.
    memory_demand_bytes: int = 0
    #: optional columnar data path: when set, the runtime feeds each task
    #: a column batch instead of a row list. Results and byte accounting
    #: must be identical to the row ``mapper``/``reducer`` (which remain
    #: mandatory -- they stay the semantic definition and the fallback).
    batch_mapper: BatchMapper | None = None
    batch_reducer: BatchReducer | None = None
    #: skew joins: mappers of this map+reduce job may emit records with
    #: ``key=None``, which bypass the shuffle and land directly in the
    #: job's output (the heavy-key side channel). Off for normal jobs so
    #: the shuffle hot loop stays branch-free.
    map_side_output: bool = False

    def __post_init__(self) -> None:
        if not self.inputs:
            raise JobError(f"job {self.name!r} has no inputs")
        if self.map_side_output and self.reducer is None:
            raise JobError(
                f"job {self.name!r} is map-only; map_side_output is "
                f"meaningful only for map+reduce jobs"
            )
        if self.batch_reducer is not None and self.reducer is None:
            raise JobError(
                f"job {self.name!r} has a batch reducer but no reducer"
            )
        if self.reducer is not None and self.num_reducers <= 0:
            raise JobError(
                f"job {self.name!r} has a reducer but num_reducers="
                f"{self.num_reducers}"
            )
        if self.reducer is None and self.num_reducers:
            raise JobError(
                f"job {self.name!r} is map-only but num_reducers="
                f"{self.num_reducers}"
            )

    @property
    def is_map_only(self) -> bool:
        return self.reducer is None

    @property
    def is_broadcast_join(self) -> bool:
        """True when tasks load broadcast build sides into memory.

        These are the jobs a :class:`repro.cluster.faults.FaultPlan` may
        doom permanently (no-spill broadcast builds are the fragile
        operator of Section 2.2.1), forcing the executor to replan.
        """
        return bool(self.broadcast_builds)
