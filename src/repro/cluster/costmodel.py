"""Analytic time model for simulated MapReduce tasks.

The paper reports wall-clock times on a 15-node Hadoop cluster; we replace
the cluster with a deterministic model (DESIGN.md Section 2). Every task's
duration is derived from the bytes it reads/writes/shuffles and the records
it processes, using the rates in :class:`repro.config.ClusterConfig`. The
model keeps the properties the paper's results depend on:

* every job pays a fixed startup cost (~15 s, Section 4.2), so plans with
  fewer jobs win when work is equal -- the reason chained broadcast joins
  help;
* repartition joins shuffle both inputs (network + sort), broadcast joins
  shuffle nothing but pay a per-task build cost in Jaql -- or an amortized
  per-node cost in Hive, whose broadcast join uses the DistributedCache
  (Section 6.6);
* map task time is dominated by split I/O plus per-record CPU, so expensive
  UDFs (modeled as extra CPU seconds) lengthen the pipeline that carries
  them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ClusterConfig


@dataclass(frozen=True)
class TaskWork:
    """Raw work performed by one task, accumulated by the runtime."""

    input_bytes: int = 0
    input_records: int = 0
    output_bytes: int = 0
    output_records: int = 0
    shuffle_bytes: int = 0
    extra_cpu_seconds: float = 0.0


class ClusterCostModel:
    """Turns :class:`TaskWork` into seconds under a :class:`ClusterConfig`."""

    def __init__(self, config: ClusterConfig):
        self.config = config

    # -- phase-level ----------------------------------------------------------

    def map_task_seconds(self, work: TaskWork, writes_to_dfs: bool,
                         build_seconds: float = 0.0) -> float:
        """Duration of one map task.

        ``writes_to_dfs`` distinguishes map-only jobs (output written to the
        DFS) from map-reduce jobs (output handed to the shuffle, charged on
        the reduce side as in Hadoop's merge-dominated shuffle).
        """
        cfg = self.config
        seconds = cfg.task_startup_seconds + build_seconds
        seconds += work.input_bytes / cfg.read_bytes_per_second
        seconds += work.input_records * cfg.cpu_seconds_per_record
        seconds += work.extra_cpu_seconds
        if writes_to_dfs:
            seconds += work.output_bytes / cfg.write_bytes_per_second
        return seconds

    def reduce_task_seconds(self, work: TaskWork) -> float:
        """Duration of one reduce task: shuffle in, reduce, write out."""
        cfg = self.config
        seconds = cfg.task_startup_seconds
        seconds += work.shuffle_bytes / cfg.shuffle_bytes_per_second
        seconds += work.input_records * cfg.cpu_seconds_per_record
        seconds += work.extra_cpu_seconds
        seconds += work.output_bytes / cfg.write_bytes_per_second
        return seconds

    # -- broadcast builds -----------------------------------------------------

    def broadcast_build_seconds(self, build_bytes: int,
                                build_records: int) -> float:
        """Time for one task to load and hash one broadcast build side."""
        cfg = self.config
        return (build_bytes / cfg.broadcast_read_bytes_per_second
                + build_records * cfg.build_seconds_per_record)

    def per_task_build_seconds(self, build_bytes: int, build_records: int,
                               num_map_tasks: int, backend: str) -> float:
        """Build cost charged to each map task, by backend.

        Jaql loads the build side in *every* task (Section 2.2.1). Hive 0.12
        distributes it once per node via the DistributedCache (Section 6.6),
        so the total build work is ``nodes x build`` spread over the job's
        tasks; with many tasks per node the per-task share shrinks.
        """
        full = self.broadcast_build_seconds(build_bytes, build_records)
        if backend == "jaql":
            return full
        if num_map_tasks <= 0:
            return full
        nodes = min(self.config.worker_nodes, num_map_tasks)
        return full * nodes / num_map_tasks

    def probe_seconds(self, probe_records: int) -> float:
        return probe_records * self.config.probe_seconds_per_record

    # -- hybrid hash join spill ----------------------------------------------

    def spill_seconds(self, spilled_bytes: int) -> float:
        """Time to write spilled partitions to local disk and read them back.

        Spill scratch uses the DFS write rate out and the sequential read
        rate back in -- same media as job output, no network hop.
        """
        cfg = self.config
        return (spilled_bytes / cfg.write_bytes_per_second
                + spilled_bytes / cfg.read_bytes_per_second)

    def spill_seconds_per_byte(self) -> float:
        """Per-byte spill cost, for charging the probe side's second pass."""
        cfg = self.config
        return (1.0 / cfg.write_bytes_per_second
                + 1.0 / cfg.read_bytes_per_second)
