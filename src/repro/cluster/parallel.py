"""Parallel data-path execution of independent jobs in a batch.

The cluster runtime separates each job into a *data pass* (read splits,
run mappers/reducers, accumulate counters and partial statistics -- all
side-effect-free except DFS read accounting and coordination publishes)
and a *finalize* step (DFS output write, output counters, client-side
statistics merge). The :class:`ParallelJobExecutor` runs the data passes
of dependency-free jobs concurrently on a ``concurrent.futures`` pool;
each level is then finalized on the driver thread, in batch order,
*before* the next level starts (dependent jobs read their predecessors'
materialized outputs), so results are byte-identical to serial execution
(see ``tests/test_parallel.py``).

This is the driver-side analogue of what the paper's strategies already
exploit in *simulated* time: PILR_MT submits every pilot job at once
(Section 4.2) and SIMPLE_MO overlaps all ready jobs (Section 5.3) -- but
the seed driver still executed their Python data paths one after another.

Failure semantics mirror serial execution: jobs are ordered by dependency
level (a valid topological order); when a job's data pass raises (e.g.
:class:`repro.errors.BroadcastBuildOverflowError`), every job *before* it
in that order still finalizes, the error propagates to the caller, and
jobs after it are never finalized.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.config import ExecutorConfig
from repro.errors import JobError

__all__ = [
    "JobSkipped",
    "ParallelJobExecutor",
    "dependency_levels",
    "topological_order",
]


class JobSkipped(Exception):
    """Placeholder outcome for jobs skipped after an earlier failure."""

    def __init__(self, job_name: str, cause: str):
        super().__init__(
            f"job {job_name!r} skipped: earlier job failed with {cause}"
        )
        self.job_name = job_name


def dependency_levels(jobs: Sequence[Any],
                      dependencies: dict[str, list[str]],
                      ) -> list[list[Any]]:
    """Partition jobs into dependency levels (Kahn's algorithm).

    Level *n* holds the jobs whose dependencies all live in levels < *n*;
    jobs within one level are mutually independent and may execute
    concurrently. Within a level, batch submission order is preserved, so
    the concatenation of levels is a deterministic topological order.
    """
    names = {job.name for job in jobs}
    for job in jobs:
        for dep in dependencies.get(job.name, []):
            if dep not in names:
                raise JobError(
                    f"job {job.name!r} depends on {dep!r} not in batch"
                )
    levels: list[list[Any]] = []
    done: set[str] = set()
    pending = list(jobs)
    while pending:
        level = [
            job for job in pending
            if all(dep in done for dep in dependencies.get(job.name, []))
        ]
        if not level:
            raise JobError(
                f"dependency cycle involving job {pending[0].name!r}"
            )
        levels.append(level)
        done.update(job.name for job in level)
        pending = [job for job in pending if job.name not in done]
    return levels


def topological_order(jobs: Sequence[Any],
                      dependencies: dict[str, list[str]]) -> list[Any]:
    """Deterministic topological order: dependency levels, flattened."""
    return [job for level in dependency_levels(jobs, dependencies)
            for job in level]


#: A data pass: (job, dispatch gate) -> opaque per-job result.
DataPass = Callable[[Any, Any], Any]


class ParallelJobExecutor:
    """Runs the data passes of a batch's jobs, level by level.

    Returns one outcome per job -- the data-pass result, the exception it
    raised, or :class:`JobSkipped` for jobs abandoned after a failure --
    keyed by job name. The caller decides how to finalize/propagate, so
    the executor stays agnostic of runtime internals.
    """

    def __init__(self, config: ExecutorConfig):
        self.config = config

    def run(self, levels: list[list[Any]],
            gates: dict[str, Any],
            data_pass: DataPass,
            finalize: Callable[[Any, Any], Any] | None = None,
            ) -> dict[str, Any]:
        """Run every level's data passes; finalize between levels.

        ``finalize(job, result)`` -- when given -- is applied on the calling
        (driver) thread to each successful data-pass result, in batch order,
        *before* the next level starts: a level's outputs must be
        materialized before dependent jobs read them. Its return value
        replaces the raw result in the outcome map.
        """
        outcomes: dict[str, Any] = {}
        failure: Exception | None = None
        pool = None
        try:
            for level in levels:
                if failure is not None:
                    for job in level:
                        outcomes[job.name] = JobSkipped(
                            job.name, type(failure).__name__
                        )
                    continue
                collected: list[tuple[Any, Any]] = []
                if len(level) < self.config.min_parallel_jobs:
                    for job in level:
                        if failure is not None:
                            break
                        try:
                            collected.append(
                                (job, data_pass(job, gates.get(job.name)))
                            )
                        except Exception as exc:  # noqa: BLE001 - relayed
                            collected.append((job, exc))
                            failure = exc
                else:
                    if pool is None:
                        pool = self._make_pool(data_pass, level[0])
                    futures = [
                        pool.submit(data_pass, job, gates.get(job.name))
                        for job in level
                    ]
                    for job, future in zip(level, futures):
                        try:
                            collected.append((job, future.result()))
                        except Exception as exc:  # noqa: BLE001 - relayed
                            collected.append((job, exc))
                            if failure is None:
                                failure = exc

                # Driver-side pass over the level in batch order: finalize
                # until the first failure, skip everything after it --
                # exactly the state a serial run leaves behind.
                first_failure: Exception | None = None
                for job, outcome in collected:
                    if isinstance(outcome, Exception):
                        outcomes[job.name] = outcome
                        if first_failure is None:
                            first_failure = outcome
                    elif first_failure is not None:
                        outcomes[job.name] = JobSkipped(
                            job.name, type(first_failure).__name__
                        )
                    elif finalize is not None:
                        try:
                            outcomes[job.name] = finalize(job, outcome)
                        except Exception as exc:  # noqa: BLE001 - relayed
                            outcomes[job.name] = exc
                            first_failure = exc
                    else:
                        outcomes[job.name] = outcome
                skipped = [job for job in level if job.name not in outcomes]
                for job in skipped:
                    assert failure is not None
                    outcomes[job.name] = JobSkipped(
                        job.name, type(failure).__name__
                    )
                if first_failure is not None and failure is None:
                    failure = first_failure
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return outcomes

    # ------------------------------------------------------------------

    def _max_workers(self) -> int:
        if self.config.max_workers is not None:
            return self.config.max_workers
        return min(32, (os.cpu_count() or 1) * 4)

    def _make_pool(self, data_pass: DataPass, sample_job: Any):
        """Build the configured pool; degrade process -> thread gracefully.

        Compiled jobs close over DFS handles, coordination counters and
        broadcast hash tables, none of which pickle -- a process pool only
        works for self-contained jobs. Rather than fail the batch, fall
        back to threads when the work is not picklable.
        """
        workers = self._max_workers()
        if self.config.pool == "process":
            try:
                pickle.dumps((data_pass, sample_job))
                return ProcessPoolExecutor(max_workers=workers)
            except Exception:  # noqa: BLE001 - any pickling failure
                pass
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="dyno-job"
        )
