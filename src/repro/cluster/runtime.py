"""Cluster runtime: executes MapReduce jobs over the simulated DFS.

Jobs *really run*: mappers and reducers are applied to the actual rows, so
join results, UDF outputs and collected statistics are genuine. What is
simulated is time: each task's duration comes from the analytic cost model,
and a batch of jobs is scheduled over the cluster's slot pools to obtain
per-job timelines and the batch makespan.

The runtime also reproduces two paper-critical behaviours:

* broadcast-join build sides are checked against the task memory budget;
  a build overflowing by up to ``spill_overflow_factor`` degrades in
  place to a spilling hybrid hash join (partitions written to and re-read
  from task-local disk, charged as extra I/O time), while a pathological
  overflow beyond the margin still *fails* the job as Jaql would
  (Section 2.2.1) and takes the executor's ban-and-replan path;
* when a job declares ``stats_columns``, every task accumulates partial
  statistics over its output and publishes them through the coordination
  service; the client merges them after the job (Section 5.4).

Memory governance: every job carries a declared memory demand
(:attr:`repro.cluster.job.MapReduceJob.memory_demand_bytes`); the slot
scheduler charges the larger of the declaration and the actually loaded
in-memory build bytes against its cluster memory pool, so concurrent
jobs queue (deterministic FIFO) when the pool is exhausted.
"""

from __future__ import annotations

import random
import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.cluster.coordination import CoordinationService
from repro.cluster.costmodel import ClusterCostModel, TaskWork
from repro.cluster.counters import Counters
from repro.cluster.faults import FaultInjector, JobAttempt
from repro.cluster.job import MapReduceJob, TaskContext, estimate_value_size
from repro.cluster.parallel import (
    JobSkipped,
    ParallelJobExecutor,
    dependency_levels,
)
from repro.cluster.scheduler import (
    JobTimeline,
    ScheduledJob,
    ScheduleResult,
    SlotScheduler,
)
from repro.config import DynoConfig
from repro.data.table import Row
from repro.errors import (
    BroadcastBuildOverflowError,
    JobError,
    JobFaultInjectedError,
    TaskRetriesExhaustedError,
)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.stats.collector import (
    TaskStatsCollector,
    merge_published_stats,
    stats_scope,
)
from repro.stats.kmv import kmv_hash
from repro.stats.statistics import TableStats
from repro.storage.dfs import DistributedFileSystem, Split

#: Called with the number of splits already dispatched; returning False
#: stops dispatching further splits (pilot-run early termination).
DispatchGate = Callable[[int], bool]


@dataclass
class JobResult:
    """Everything known about one executed job."""

    job: MapReduceJob
    output_name: str
    output_rows: int
    output_bytes: int
    counters: Counters
    map_task_seconds: list[float]
    reduce_task_seconds: list[float]
    splits_processed: int
    splits_total: int
    collected_stats: TableStats | None = None
    timeline: JobTimeline | None = None
    #: driver wall-clock spent in this job's data pass (seconds); only
    #: measured while tracing/metrics are enabled, else 0.0.
    driver_wall_seconds: float = 0.0
    #: bytes spilled to task-local disk by the hybrid hash join (build
    #: partitions plus the probe side's second pass); 0 for in-memory runs.
    spilled_bytes: int = 0
    #: build bytes actually resident in task memory (after spilling);
    #: feeds the scheduler's per-job memory charge.
    in_memory_build_bytes: int = 0

    @property
    def elapsed_seconds(self) -> float:
        if self.timeline is None:
            raise JobError(f"job {self.job.name!r} has not been scheduled")
        return self.timeline.elapsed

    @property
    def scanned_fraction(self) -> float:
        """Fraction of the input splits actually processed."""
        if self.splits_total == 0:
            return 1.0
        return self.splits_processed / self.splits_total


@dataclass
class _JobDataPass:
    """Intermediate product of a job's data pass, before finalization.

    Holds everything the worker side computed; the driver turns it into a
    :class:`JobResult` by writing the output to DFS and merging published
    statistics (see :meth:`ClusterRuntime._finalize_job`).
    """

    counters: Counters
    output_rows: list[Row]
    map_task_seconds: list[float]
    reduce_task_seconds: list[float]
    splits_processed: int
    splits_total: int
    driver_wall_seconds: float = 0.0
    spilled_bytes: int = 0
    in_memory_build_bytes: int = 0
    #: per-row sizes parallel to ``output_rows`` (each row was sized once
    #: during the pass); lets finalize hand the DFS pre-computed sizes for
    #: schema-free outputs instead of re-walking every dict.
    output_sizes: list[int] | None = None


@dataclass(frozen=True)
class _BuildLoad:
    """Outcome of loading a job's broadcast build sides.

    ``spill_fraction`` is the share of the build that did not fit in task
    memory; the probe side pays a second pass over the same fraction of
    its input (Grace-style hybrid hash join).
    """

    per_task_seconds: float = 0.0
    loaded_bytes: int = 0
    spilled_bytes: int = 0
    spill_fraction: float = 0.0
    in_memory_bytes: int = 0


@dataclass
class BatchResult:
    """Results of a set of jobs executed as one scheduling batch."""

    results: dict[str, JobResult]
    makespan: float

    def __getitem__(self, job_name: str) -> JobResult:
        return self.results[job_name]

    @property
    def total_task_seconds(self) -> float:
        """Aggregate cluster work (used for utilization assertions)."""
        return sum(
            sum(result.map_task_seconds) + sum(result.reduce_task_seconds)
            for result in self.results.values()
        )


class ClusterRuntime:
    """Executes jobs and batches; owns the simulated clock."""

    def __init__(self, dfs: DistributedFileSystem, config: DynoConfig,
                 coordination: CoordinationService | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None):
        self.dfs = dfs
        self.config = config
        self.coordination = coordination or CoordinationService()
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics or NULL_METRICS
        self.cost_model = ClusterCostModel(config.cluster)
        self.scheduler = SlotScheduler(
            config.cluster.total_map_slots,
            config.cluster.total_reduce_slots,
            policy=config.cluster.scheduler_policy,
            speculative=config.cluster.speculative_execution,
            speculative_threshold=config.cluster.speculative_slowdown_threshold,
            tracer=self.tracer,
            memory_pool_bytes=config.cluster.effective_cluster_memory_bytes,
        )
        self._parallel = ParallelJobExecutor(config.executor)
        #: armed fault schedule, or None -- with no plan armed the fault
        #: machinery is entirely off the data-path hot loop.
        self.fault_injector: FaultInjector | None = None
        if config.fault_plan is not None and config.fault_plan.injects_anything:
            self.fault_injector = config.fault_plan.arm()
            self.fault_injector.bind(self.tracer, self.metrics)
        self._faults_suspended = 0
        #: serializes whole batches: concurrent query drivers (the
        #: multi-query service) share one runtime, and both the slot
        #: scheduler pass and the ``clock_seconds`` read-modify-write below
        #: assume exclusive access for the duration of a batch.
        self._batch_lock = threading.Lock()
        #: cumulative simulated time of everything executed through
        #: :meth:`execute` / :meth:`execute_batch`.
        self.clock_seconds = 0.0
        self.jobs_executed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @contextmanager
    def suspended_faults(self):
        """Temporarily disable fault injection (re-entrant).

        Pilot runs execute inside this context: they happen before the
        "real" query starts, and keeping them fault-free guarantees that
        leaf statistics -- and therefore the optimizer's first plan -- are
        identical between a faulted and a fault-free run, which is what
        the differential oracle checks.
        """
        self._faults_suspended += 1
        try:
            yield
        finally:
            self._faults_suspended -= 1

    def _active_injector(self) -> FaultInjector | None:
        if self._faults_suspended or self.fault_injector is None:
            return None
        return self.fault_injector

    def execute(self, job: MapReduceJob,
                gate: DispatchGate | None = None) -> JobResult:
        """Execute one job and advance the simulated clock."""
        batch = self.execute_batch([job], gates={job.name: gate} if gate else None)
        return batch[job.name]

    def execute_batch(
        self,
        jobs: list[MapReduceJob],
        dependencies: dict[str, list[str]] | None = None,
        gates: dict[str, DispatchGate | None] | None = None,
    ) -> BatchResult:
        """Execute jobs as one batch sharing the cluster's slots.

        ``dependencies`` maps a job name to the names of jobs (in the same
        batch) that must finish before it starts -- used by PILR_ST's
        sequential submission and by multi-job plan steps.

        Batches are mutually exclusive: concurrent driver threads queue on
        the batch lock, so each batch sees a consistent cluster (scheduler
        state, clock, DFS writes of its own jobs) exactly as if submitted
        to one JobTracker.
        """
        if not jobs:
            return BatchResult({}, 0.0)
        with self._batch_lock:
            return self._execute_batch_locked(jobs, dependencies, gates)

    def _execute_batch_locked(
        self,
        jobs: list[MapReduceJob],
        dependencies: dict[str, list[str]] | None = None,
        gates: dict[str, DispatchGate | None] | None = None,
    ) -> BatchResult:
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise JobError("duplicate job names in batch")
        dependencies = dependencies or {}
        gates = gates or {}

        # Data pass: run jobs level by level so inputs are materialized
        # before consumers read them. Independent jobs of a level run
        # concurrently when the parallel executor is enabled; finalization
        # (DFS writes, stats merges) always happens here, on the driver, in
        # deterministic batch order -- so results are byte-identical either
        # way.
        levels = dependency_levels(jobs, dependencies)
        results: dict[str, JobResult] = {}
        if self._use_parallel(levels):
            outcomes = self._parallel.run(
                levels, gates, self._job_data_pass,
                finalize=self._finalize_job,
            )
            for level in levels:
                for job in level:
                    outcome = outcomes[job.name]
                    if isinstance(outcome, JobSkipped):
                        raise JobError(
                            f"job {job.name!r} skipped without a prior "
                            f"failure"
                        )  # pragma: no cover - defensive
                    if isinstance(outcome, Exception):
                        raise outcome
                    results[job.name] = outcome
        else:
            for level in levels:
                for job in level:
                    results[job.name] = self._run_job_data(
                        job, gates.get(job.name)
                    )

        # Time pass: schedule all tasks over the shared slot pools. Retry
        # backoff accumulated during the data pass is charged as extra
        # startup time: the job existed, waited, and was resubmitted.
        injector = self._active_injector()
        base_startup = self.config.cluster.job_startup_seconds
        scheduled = [
            ScheduledJob(
                job_id=job.name,
                map_durations=results[job.name].map_task_seconds,
                reduce_durations=results[job.name].reduce_task_seconds,
                startup_seconds=base_startup + (
                    injector.consume_penalty(job.name) if injector else 0.0
                ),
                depends_on=list(dependencies.get(job.name, [])),
                memory_bytes=max(
                    job.memory_demand_bytes,
                    results[job.name].in_memory_build_bytes,
                ),
            )
            for job in jobs
        ]
        schedule: ScheduleResult = self.scheduler.schedule(scheduled)
        for name, timeline in schedule.timelines.items():
            results[name].timeline = timeline

        self.clock_seconds += schedule.makespan
        self.jobs_executed += len(jobs)
        if self.tracer.enabled or self.metrics.enabled:
            self._record_batch(jobs, results, scheduled, schedule.makespan)
        return BatchResult(results, schedule.makespan)

    def _record_batch(self, jobs: list[MapReduceJob],
                      results: dict[str, JobResult],
                      scheduled: list[ScheduledJob],
                      makespan: float) -> None:
        """Emit per-job trace events and batch metrics (observing runs only).

        Each job reports its *simulated* time components (startup, map and
        reduce task seconds, scheduled elapsed) and the *driver wall-clock*
        of its data pass separately -- the split the ISSUE's est-vs-actual
        audit and every later perf PR measure through.
        """
        startup_of = {entry.job_id: entry.startup_seconds
                      for entry in scheduled}
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("jobs.executed", len(jobs))
            metrics.observe("batch.makespan_s", makespan)
        tracer = self.tracer
        for job in jobs:
            result = results[job.name]
            timeline = result.timeline
            if metrics.enabled:
                metrics.inc("rows.output", result.output_rows)
                metrics.inc("bytes.output", result.output_bytes)
                metrics.observe("job.driver_wall_s",
                                result.driver_wall_seconds)
                metrics.observe("job.sim_elapsed_s",
                                timeline.elapsed if timeline else 0.0)
                if result.spilled_bytes:
                    metrics.inc("bytes.spilled", result.spilled_bytes)
            if result.spilled_bytes and tracer.enabled:
                tracer.event(
                    "spill",
                    job=job.name,
                    spilled_bytes=result.spilled_bytes,
                    in_memory_build_bytes=result.in_memory_build_bytes,
                    task_memory_bytes=self.config.cluster.task_memory_bytes,
                )
            if tracer.enabled:
                tracer.event(
                    "job",
                    job=job.name,
                    output=result.output_name,
                    rows=result.output_rows,
                    bytes=result.output_bytes,
                    splits=result.splits_processed,
                    sim_startup_s=round(startup_of.get(job.name, 0.0), 6),
                    sim_map_s=round(sum(result.map_task_seconds), 6),
                    sim_reduce_s=round(sum(result.reduce_task_seconds), 6),
                    sim_elapsed_s=round(timeline.elapsed, 6)
                    if timeline else 0.0,
                    driver_wall_s=round(result.driver_wall_seconds, 6),
                )
        if tracer.enabled:
            tracer.event("batch", jobs=sorted(results),
                         makespan_s=round(makespan, 6))

    # ------------------------------------------------------------------
    # data execution
    # ------------------------------------------------------------------

    def _use_parallel(self, levels: list[list[MapReduceJob]]) -> bool:
        """Parallel data pass only when some level is actually wide."""
        executor = self.config.executor
        if not executor.parallel_jobs:
            return False
        return any(
            len(level) >= executor.min_parallel_jobs for level in levels
        )

    def _load_broadcast_sides(
        self, job: MapReduceJob, counters: Counters, num_map_tasks: int
    ) -> _BuildLoad:
        """Load build sides, enforce task memory, return the load outcome.

        The read cost covers the raw build files (every task re-reads them
        under the Jaql backend); the memory check covers the *loaded* rows,
        i.e. after the build side's local predicates ran -- that is what the
        in-memory hash table actually holds (Section 2.2.1).

        A build overflowing ``task_memory_bytes`` by at most
        ``spill_overflow_factor`` *degrades in place*: the task keeps a
        budget-sized share in memory and Grace-partitions the rest to
        task-local disk, paying spill I/O time (results are unchanged --
        rows stay loaded; only time and byte accounting differ). Overflow
        beyond the margin is a pathological misestimate and still raises
        :class:`BroadcastBuildOverflowError`, which the dynamic executor
        turns into a ban-and-replan.
        """
        if not job.broadcast_builds:
            return _BuildLoad()
        read_bytes = 0
        loaded_bytes = 0
        loaded_records = 0
        for build in job.broadcast_builds:
            raw_rows = self.dfs.read_all(build.input_file)
            build.load(raw_rows)
            read_bytes += self.dfs.file_size(build.input_file)
            loaded_bytes += build.loaded_bytes
            loaded_records += len(build.built_rows())
        counters.increment("map", Counters.BROADCAST_BYTES, read_bytes)
        cluster = self.config.cluster
        budget = cluster.task_memory_bytes
        spilled = 0
        if loaded_bytes > budget:
            if loaded_bytes > budget * cluster.spill_overflow_factor:
                raise BroadcastBuildOverflowError(
                    loaded_bytes, budget, job.name,
                    "; ".join(f"{build.description}={build.loaded_bytes}B"
                              for build in job.broadcast_builds),
                )
            spilled = loaded_bytes - budget
            counters.increment("map", Counters.SPILLED_BYTES, spilled)
            self.dfs.charge_spill(spilled, spilled)
        build_seconds = self.cost_model.per_task_build_seconds(
            read_bytes, loaded_records, num_map_tasks, self.config.backend
        )
        if spilled:
            # Overflow partitions are written once during the build and
            # read back once while probing.
            build_seconds += self.cost_model.spill_seconds(spilled)
        return _BuildLoad(
            per_task_seconds=build_seconds,
            loaded_bytes=loaded_bytes,
            spilled_bytes=spilled,
            spill_fraction=spilled / loaded_bytes if spilled else 0.0,
            in_memory_bytes=min(loaded_bytes, budget),
        )

    def _task_attempts(self, job_name: str,
                       attempt: JobAttempt | None = None):
        """Deterministic per-job task failure/straggler injector.

        Returns a callable mapping one task attempt's duration to the
        total duration including retried attempts (a failed attempt
        re-executes from scratch, like Hadoop's task retry). A task that
        burns through ``max_task_attempts`` kills the job with
        :class:`TaskRetriesExhaustedError` -- Hadoop's
        mapred.*.max.attempts semantics.
        """
        cluster = self.config.cluster
        if attempt is not None:
            return attempt.task_inflater(cluster.max_task_attempts,
                                         cluster.task_startup_seconds)
        rate = cluster.task_failure_rate
        if rate <= 0.0:
            return lambda seconds: seconds
        rng = random.Random(f"failures/{job_name}")
        max_attempts = cluster.max_task_attempts

        def with_retries(seconds: float) -> float:
            total = seconds
            failures = 0
            while rng.random() < rate:
                failures += 1
                if failures >= max_attempts:
                    raise TaskRetriesExhaustedError(job_name, max_attempts)
                total += seconds + cluster.task_startup_seconds
            return total

        return with_retries

    def _run_job_data(self, job: MapReduceJob,
                      gate: DispatchGate | None) -> JobResult:
        return self._finalize_job(job, self._job_data_pass(job, gate))

    def _retry_backoff_seconds(self, failed_attempts: int) -> float:
        cluster = self.config.cluster
        backoff = cluster.job_retry_backoff_seconds * \
            (2.0 ** (failed_attempts - 1))
        return min(backoff, cluster.job_retry_backoff_cap_seconds)

    def _job_data_pass(self, job: MapReduceJob,
                       gate: DispatchGate | None) -> "_JobDataPass":
        """Data pass with whole-job fault injection and bounded retries.

        Transient injected job faults (:class:`JobFaultInjectedError`) are
        retried here -- *inside* the per-job callable the parallel
        executor runs -- so serial and parallel execution recover
        identically. Each retry is a fresh incarnation (fresh fault
        draws, partial published stats cleared) and charges capped
        exponential backoff to the job's simulated startup time.
        """
        observing = self.tracer.enabled or self.metrics.enabled
        wall_start = time.perf_counter() if observing else 0.0
        data = self._job_data_pass_with_retries(job, gate)
        if observing:
            data.driver_wall_seconds = time.perf_counter() - wall_start
        return data

    def _job_data_pass_with_retries(self, job: MapReduceJob,
                                    gate: DispatchGate | None,
                                    ) -> "_JobDataPass":
        injector = self._active_injector()
        if injector is None:
            return self._run_data_pass(job, gate, None)
        failed_attempts = 0
        while True:
            attempt = injector.begin_attempt(job)
            try:
                return self._run_data_pass(job, gate, attempt)
            except JobFaultInjectedError:
                failed_attempts += 1
                if failed_attempts >= self.config.cluster.max_job_attempts:
                    raise
                # A re-run re-publishes its partial statistics from
                # scratch; drop the dead attempt's entries first.
                self.coordination.clear_scope(stats_scope(job.name))
                injector.add_penalty(
                    job.name, self._retry_backoff_seconds(failed_attempts))

    def _run_data_pass(self, job: MapReduceJob, gate: DispatchGate | None,
                       attempt: JobAttempt | None) -> "_JobDataPass":
        """Everything except DFS output writes and the client-side stats
        merge -- safe to run off the driver thread (see cluster.parallel).

        Each emitted row is sized exactly *once*: the estimate feeds the
        map output byte counter, travels with the record through the
        shuffle, and reaches the statistics collector -- the seed sized
        the same row up to three times.
        """
        if attempt is not None:
            attempt.boundary("map")
        counters = Counters()
        attempts = self._task_attempts(job.name, attempt)
        splits = job.splits if job.splits is not None else self._all_splits(job)
        splits_total = len(splits)

        build = self._load_broadcast_sides(job, counters, len(splits))
        build_seconds = build.per_task_seconds
        spill_per_byte = (self.cost_model.spill_seconds_per_byte()
                          if build.spill_fraction else 0.0)
        probe_spill_bytes = 0

        #: keyed map output with each value's byte size carried alongside.
        map_outputs: list[tuple[object, Row, int]] = []
        map_task_seconds: list[float] = []
        output_rows: list[Row] = []
        output_sizes: list[int] = []
        stat_tasks: list[TaskStatsCollector] = []
        splits_processed = 0
        batch_mapper = job.batch_mapper

        for split in splits:
            if gate is not None and not gate(splits_processed):
                break
            splits_processed += 1
            context = TaskContext()
            direct_bytes = 0
            direct_records = 0
            if batch_mapper is not None:
                # Columnar path: the mapper consumes the whole split as a
                # column batch and returns rows + pre-computed sizes; every
                # byte/record quantity below matches the row path exactly.
                batch = self.dfs.read_split_batch(split)
                emit = batch_mapper(context, split.file_name, batch)
                input_records = len(batch)
                emitted_records = len(emit.rows)
                if job.is_map_only:
                    task_rows = emit.rows
                    task_sizes = emit.sizes
                    emitted_bytes = sum(task_sizes)
                    output_rows.extend(task_rows)
                    output_sizes.extend(task_sizes)
                    if job.stats_columns:
                        collector = self._make_collector(
                            job, f"map-{split.index}")
                        if emit.columns is not None:
                            collector.observe_columns(emit.columns, task_sizes)
                        else:
                            collector.observe_batch(task_rows, task_sizes)
                        collector.publish()
                        stat_tasks.append(collector)
                elif job.map_side_output:
                    emitted_bytes, direct_bytes, direct_records = \
                        self._route_map_side_output(
                            job, split,
                            zip(emit.keys, emit.rows, emit.sizes),  # type: ignore[arg-type]
                            map_outputs, output_rows, output_sizes,
                            stat_tasks,
                        )
                else:
                    emitted_bytes = 8 * emitted_records + sum(emit.sizes)
                    map_outputs.extend(
                        zip(emit.keys, emit.rows, emit.sizes)  # type: ignore[arg-type]
                    )
            else:
                rows = self.dfs.read_split(split)
                job.mapper(context, split.file_name, rows)
                input_records = len(rows)
                emitted = context.emitted
                emitted_records = len(emitted)
                if job.is_map_only:
                    task_rows = [value for _, value in emitted]
                    task_sizes = [estimate_value_size(row)
                                  for row in task_rows]
                    emitted_bytes = sum(task_sizes)
                    output_rows.extend(task_rows)
                    output_sizes.extend(task_sizes)
                    if job.stats_columns:
                        collector = self._make_collector(
                            job, f"map-{split.index}")
                        collector.observe_batch(task_rows, task_sizes)
                        collector.publish()
                        stat_tasks.append(collector)
                elif job.map_side_output:
                    emitted_bytes, direct_bytes, direct_records = \
                        self._route_map_side_output(
                            job, split,
                            ((key, value, estimate_value_size(value))
                             for key, value in emitted),
                            map_outputs, output_rows, output_sizes,
                            stat_tasks,
                        )
                else:
                    emitted_bytes = 0
                    for key, value in emitted:
                        size = estimate_value_size(value)
                        emitted_bytes += 8 + size
                        map_outputs.append((key, value, size))

            counters.increment("map", Counters.MAP_INPUT_RECORDS,
                               input_records)
            counters.increment("map", Counters.MAP_INPUT_BYTES,
                               split.size_bytes)
            counters.increment("map", Counters.MAP_OUTPUT_RECORDS,
                               emitted_records)
            counters.increment("map", Counters.MAP_OUTPUT_BYTES, emitted_bytes)
            stats_cpu = 0.0
            if job.stats_columns:
                stat_records = (emitted_records if job.is_map_only
                                else direct_records)
                stats_cpu = (stat_records
                             * self.config.cluster.stats_seconds_per_record)
            work = TaskWork(
                input_bytes=split.size_bytes,
                input_records=input_records,
                output_bytes=emitted_bytes,
                output_records=emitted_records,
                extra_cpu_seconds=context.extra_cpu_seconds + stats_cpu,
            )
            task_seconds = self.cost_model.map_task_seconds(
                work, writes_to_dfs=job.is_map_only,
                build_seconds=build_seconds,
            )
            if direct_bytes:
                # Heavy-key results bypass the shuffle and are written to
                # the DFS by the map task itself.
                task_seconds += (direct_bytes
                                 / self.config.cluster.write_bytes_per_second)
            if build.spill_fraction:
                # Hybrid hash join: the probe rows hashing to spilled
                # partitions are staged to disk and joined in a second
                # pass over this split's share of the input.
                task_spill = int(split.size_bytes * build.spill_fraction)
                probe_spill_bytes += task_spill
                task_seconds += task_spill * spill_per_byte
            map_task_seconds.append(attempts(task_seconds))

        reduce_task_seconds: list[float] = []
        if not job.is_map_only:
            if attempt is not None:
                attempt.boundary("reduce")
            reduce_rows, reduce_sizes = self._run_reduce_phase(
                job, map_outputs, counters, reduce_task_seconds,
                stat_tasks, attempts,
            )
            if output_rows:
                # Skew joins write heavy-key results map-side; the tail's
                # reduce output is appended after them, in a deterministic
                # (split order, then partition order) layout.
                output_rows.extend(reduce_rows)
                output_sizes.extend(reduce_sizes)
            else:
                output_rows, output_sizes = reduce_rows, reduce_sizes

        if attempt is not None:
            # Fired at the end of the (worker-side) data pass, modeling a
            # failure while committing the job -- the driver-side finalize
            # itself stays deterministic for the parallel executor.
            attempt.boundary("finalize")
        if probe_spill_bytes:
            counters.increment("map", Counters.SPILLED_BYTES,
                               probe_spill_bytes)
            self.dfs.charge_spill(probe_spill_bytes, probe_spill_bytes)
        return _JobDataPass(
            counters=counters,
            output_rows=output_rows,
            map_task_seconds=map_task_seconds,
            reduce_task_seconds=reduce_task_seconds,
            splits_processed=splits_processed,
            splits_total=splits_total,
            spilled_bytes=build.spilled_bytes + probe_spill_bytes,
            in_memory_build_bytes=build.in_memory_bytes,
            output_sizes=output_sizes,
        )

    def _finalize_job(self, job: MapReduceJob,
                      data: "_JobDataPass") -> JobResult:
        """Driver-side completion: materialize output, merge statistics."""
        counters = data.counters
        output_rows = data.output_rows
        # Sizes computed during the pass equal the write-side estimate for
        # schema-free (intermediate) outputs and for typed schemas whose
        # field kinds all size value-exactly; both reduce to
        # estimate_value_size per row. Other outputs re-derive from schema.
        row_sizes = None
        if data.output_sizes is not None and \
                job.output_schema.sizes_value_exact_kinds:
            row_sizes = data.output_sizes
        output_file = self.dfs.write_rows(
            job.output_name, job.output_schema, output_rows, overwrite=True,
            row_sizes=row_sizes,
        )
        counters.increment("output", Counters.OUTPUT_RECORDS, len(output_rows))
        counters.increment("output", Counters.OUTPUT_BYTES,
                           output_file.size_bytes)

        collected: TableStats | None = None
        if job.stats_columns:
            collected = merge_published_stats(job.name, self.coordination)

        return JobResult(
            job=job,
            output_name=job.output_name,
            output_rows=len(output_rows),
            output_bytes=output_file.size_bytes,
            counters=counters,
            map_task_seconds=data.map_task_seconds,
            reduce_task_seconds=data.reduce_task_seconds,
            splits_processed=data.splits_processed,
            splits_total=data.splits_total,
            collected_stats=collected,
            driver_wall_seconds=data.driver_wall_seconds,
            spilled_bytes=data.spilled_bytes,
            in_memory_build_bytes=data.in_memory_build_bytes,
        )

    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        map_outputs: list[tuple[object, Row, int]],
        counters: Counters,
        reduce_task_seconds: list[float],
        stat_tasks: list[TaskStatsCollector],
        attempts=None,
    ) -> tuple[list[Row], list[int]]:
        if attempts is None:
            attempts = self._task_attempts(job.name)
        num_reducers = job.num_reducers
        batch_reducer = job.batch_reducer
        if batch_reducer is not None:
            return self._run_batch_reduce_phase(
                job, map_outputs, counters, reduce_task_seconds,
                stat_tasks, attempts, batch_reducer,
            )
        output_rows: list[Row] = []
        output_sizes: list[int] = []
        partitions: list[list[tuple[object, Row, int]]] = [
            [] for _ in range(num_reducers)
        ]
        appends = [partition.append for partition in partitions]
        hash_of = kmv_hash
        for entry in map_outputs:
            appends[hash_of(entry[0]) % num_reducers](entry)

        for partition_id, partition in enumerate(partitions):
            context = TaskContext()
            shuffle_bytes = 0
            groups: dict[object, list[Row]] = defaultdict(list)
            order: dict[object, int] = {}
            for key, value, size in partition:
                shuffle_bytes += 8 + size
                frozen = _freeze_key(key)
                if frozen not in order:
                    order[frozen] = len(order)
                groups[frozen].append(value)

            # Keys are reduced in a deterministic (sorted-by-arrival)
            # order, mirroring the framework's sort phase.
            for frozen in sorted(groups, key=lambda item: order[item]):
                job.reducer(context, frozen, groups[frozen])  # type: ignore[misc]

            task_rows = [value for _, value in context.emitted]
            task_sizes = [estimate_value_size(row) for row in task_rows]
            task_bytes = sum(task_sizes)
            output_rows.extend(task_rows)
            output_sizes.extend(task_sizes)
            if job.stats_columns:
                collector = self._make_collector(job, f"reduce-{partition_id}")
                collector.observe_batch(task_rows, task_sizes)
                collector.publish()
                stat_tasks.append(collector)

            counters.increment("reduce", Counters.REDUCE_INPUT_RECORDS,
                               len(partition))
            counters.increment("reduce", Counters.SHUFFLE_BYTES, shuffle_bytes)
            counters.increment("reduce", Counters.REDUCE_OUTPUT_RECORDS,
                               len(task_rows))
            stats_cpu = 0.0
            if job.stats_columns:
                stats_cpu = (len(task_rows)
                             * self.config.cluster.stats_seconds_per_record)
            work = TaskWork(
                input_records=len(partition),
                output_bytes=task_bytes,
                output_records=len(task_rows),
                shuffle_bytes=shuffle_bytes,
                extra_cpu_seconds=context.extra_cpu_seconds + stats_cpu,
            )
            reduce_task_seconds.append(
                attempts(self.cost_model.reduce_task_seconds(work))
            )
        return output_rows, output_sizes

    def _run_batch_reduce_phase(
        self,
        job: MapReduceJob,
        map_outputs: list[tuple[object, Row, int]],
        counters: Counters,
        reduce_task_seconds: list[float],
        stat_tasks: list[TaskStatsCollector],
        attempts,
        batch_reducer,
    ) -> tuple[list[Row], list[int]]:
        """Columnar reduce: one global grouping pass, then hash per *group*.

        Every entry of a group lands in the same partition (the partition
        function only sees the key), so grouping first and routing whole
        groups hashes each distinct key once instead of once per record.
        Per partition, groups keep global first-arrival order, which is
        exactly the order the per-partition grouping pass would produce --
        and matches the row path's sorted-by-arrival reduce order.
        """
        num_reducers = job.num_reducers
        grouped: dict[object, tuple[list[Row], list[int]]] = {}
        get_group = grouped.get
        for key, value, size in map_outputs:
            kind = type(key)
            if kind is list or kind is tuple:
                frozen = _freeze_key(key)
            else:  # scalar keys (the common case) freeze to themselves
                frozen = key
            entry = get_group(frozen)
            if entry is None:
                grouped[frozen] = ([value], [size])
            else:
                entry[0].append(value)
                entry[1].append(size)

        partitions: list[list[tuple[object, list[Row], list[int]]]] = [
            [] for _ in range(num_reducers)
        ]
        hash_of = kmv_hash
        for frozen, (values, sizes) in grouped.items():
            partitions[hash_of(frozen) % num_reducers].append(
                (frozen, values, sizes)
            )

        output_rows: list[Row] = []
        output_sizes: list[int] = []
        for partition_id, partition in enumerate(partitions):
            context = TaskContext()
            input_records = 0
            shuffle_bytes = 0
            for _, values, sizes in partition:
                input_records += len(values)
                shuffle_bytes += 8 * len(values) + sum(sizes)
            emit = batch_reducer(context, partition)
            task_rows = emit.rows
            task_sizes = emit.sizes
            task_bytes = sum(task_sizes)
            output_rows.extend(task_rows)
            output_sizes.extend(task_sizes)
            if job.stats_columns:
                collector = self._make_collector(job, f"reduce-{partition_id}")
                collector.observe_batch(task_rows, task_sizes)
                collector.publish()
                stat_tasks.append(collector)

            counters.increment("reduce", Counters.REDUCE_INPUT_RECORDS,
                               input_records)
            counters.increment("reduce", Counters.SHUFFLE_BYTES, shuffle_bytes)
            counters.increment("reduce", Counters.REDUCE_OUTPUT_RECORDS,
                               len(task_rows))
            stats_cpu = 0.0
            if job.stats_columns:
                stats_cpu = (len(task_rows)
                             * self.config.cluster.stats_seconds_per_record)
            work = TaskWork(
                input_records=input_records,
                output_bytes=task_bytes,
                output_records=len(task_rows),
                shuffle_bytes=shuffle_bytes,
                extra_cpu_seconds=context.extra_cpu_seconds + stats_cpu,
            )
            reduce_task_seconds.append(
                attempts(self.cost_model.reduce_task_seconds(work))
            )
        return output_rows, output_sizes

    def _route_map_side_output(
        self,
        job: MapReduceJob,
        split: Split,
        entries,
        map_outputs: list[tuple[object, Row, int]],
        output_rows: list[Row],
        output_sizes: list[int],
        stat_tasks: list[TaskStatsCollector],
    ) -> tuple[int, int, int]:
        """Split a skew-join map task's emission between output and shuffle.

        Records emitted with ``key=None`` carry heavy-key join results
        produced map-side; they bypass the shuffle entirely and land in
        the job's output (charged at the DFS write rate by the caller).
        Keyed records are the long tail and shuffle as usual. Returns
        ``(emitted_bytes, direct_bytes, direct_records)``.
        """
        emitted_bytes = 0
        direct_bytes = 0
        direct_rows: list[Row] = []
        direct_sizes: list[int] = []
        for key, value, size in entries:
            if key is None:
                direct_rows.append(value)
                direct_sizes.append(size)
                direct_bytes += size
            else:
                emitted_bytes += 8 + size
                map_outputs.append((key, value, size))
        emitted_bytes += direct_bytes
        if direct_rows:
            output_rows.extend(direct_rows)
            output_sizes.extend(direct_sizes)
            if job.stats_columns:
                collector = self._make_collector(job, f"map-{split.index}")
                collector.observe_batch(direct_rows, direct_sizes)
                collector.publish()
                stat_tasks.append(collector)
        return emitted_bytes, direct_bytes, len(direct_rows)

    def _make_collector(self, job: MapReduceJob,
                        task_id: str) -> TaskStatsCollector:
        return TaskStatsCollector(
            job.name, task_id, job.stats_columns, self.coordination,
            kmv_size=self.config.pilot.kmv_size,
        )

    def _all_splits(self, job: MapReduceJob) -> list[Split]:
        splits: list[Split] = []
        for name in job.inputs:
            splits.extend(self.dfs.file_splits(name))
        return splits


def _freeze_key(key: object) -> object:
    """Make join keys hashable/groupable (lists become tuples)."""
    if isinstance(key, list):
        return tuple(_freeze_key(item) for item in key)
    if isinstance(key, tuple):
        return tuple(_freeze_key(item) for item in key)
    return key
