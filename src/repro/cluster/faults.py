"""Deterministic fault injection for the simulated cluster.

The paper's robustness argument (Section 1) is that DYNO inherits
MapReduce's fault tolerance for free: every job checkpoints its output to
the DFS, so a failure re-runs only the lost sub-plan and re-optimization
can route around a permanently broken operator. This module supplies the
adverse schedules that let tests *prove* that claim.

A :class:`FaultPlan` is a small, seeded, JSON-serializable description of
what goes wrong during a run:

* **task-attempt failures** -- individual task attempts fail with
  ``task_failure_rate`` and consume attempts against the cluster's
  ``max_task_attempts`` budget (Hadoop's mapred.*.max.attempts). Retries
  cost simulated time; an exhausted budget kills the job with
  :class:`~repro.errors.TaskRetriesExhaustedError`.
* **whole-job failures** -- the job dies at a map/reduce/finalize
  boundary (:class:`~repro.errors.JobFaultInjectedError`); the runtime
  retries it with capped exponential backoff, charged as extra startup
  time in the slot schedule.
* **stragglers** -- a task's duration is multiplied by
  ``straggler_factor``; with speculative execution enabled the
  :class:`~repro.cluster.scheduler.SlotScheduler` launches backup copies
  that cap the damage.
* **node loss** -- a materialized job output disappears from the DFS
  between DYNOPT iterations; the executor re-runs only the producing
  sub-plan (provenance-based recovery).
* **doomed broadcasts** -- a broadcast-join job fails *permanently*
  (every attempt), forcing the re-optimization loop to replan the join
  as a repartition join.

Every random draw is derived from ``blake2b(seed, job-name, incarnation,
channel)``, never from global RNG state or ``hash()`` (which is salted
per process). Faults are therefore reproducible across runs *and*
independent of the order in which the parallel executor interleaves job
data passes -- the property the differential oracle in ``tests/oracle.py``
relies on. Retried jobs get a fresh *incarnation* and hence fresh draws,
so transient faults do not repeat deterministically forever.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
from dataclasses import asdict, dataclass
from typing import Callable, Iterable

from repro.errors import FaultPlanError, JobFaultInjectedError, \
    TaskRetriesExhaustedError
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer

#: the only boundaries at which a whole-job fault may fire.
JOB_BOUNDARIES = ("map", "reduce", "finalize")


def derived_rng(seed: int, *parts: object) -> random.Random:
    """A ``random.Random`` keyed on ``seed`` and a structured label.

    Uses blake2b, not ``hash()``: Python salts string hashing per process,
    which would break cross-process reproducibility of a fault schedule.
    """
    label = "/".join(str(part) for part in parts)
    digest = hashlib.blake2b(f"{seed}:{label}".encode("utf-8"),
                             digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big"))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of injected faults.

    All rates are probabilities in ``[0, 1]``; budgets (``max_*``) bound
    how much damage a plan may do so every plan terminates. A plan with
    all rates zero injects nothing and costs nothing (the runtime skips
    the fault path entirely).
    """

    seed: int
    name: str = ""
    #: per-task-attempt failure probability (consumes retry budget).
    task_failure_rate: float = 0.0
    #: per-boundary whole-job failure probability.
    job_failure_rate: float = 0.0
    job_failure_boundaries: tuple[str, ...] = JOB_BOUNDARIES
    #: total whole-job faults injected per job name before the plan
    #: leaves that job alone (keeps transient faults transient).
    max_job_failures: int = 2
    #: probability that a task straggles ...
    straggler_rate: float = 0.0
    #: ... and the slowdown multiplier when it does.
    straggler_factor: float = 8.0
    #: probability that a freshly materialized job output is lost.
    node_loss_rate: float = 0.0
    max_node_losses: int = 2
    #: probability that a broadcast-join job is *doomed*: every attempt
    #: fails, modeling a permanently overloaded build -- the executor
    #: must replan the join as repartition.
    broadcast_failure_rate: float = 0.0

    def __post_init__(self) -> None:
        for rate_name in ("task_failure_rate", "job_failure_rate",
                          "straggler_rate", "node_loss_rate",
                          "broadcast_failure_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(
                    f"{rate_name} must be within [0, 1], got {rate}")
        if self.straggler_factor < 1.0:
            raise FaultPlanError("straggler_factor must be >= 1.0")
        if self.max_job_failures < 0 or self.max_node_losses < 0:
            raise FaultPlanError("fault budgets must be non-negative")
        boundaries = tuple(self.job_failure_boundaries)
        unknown = set(boundaries) - set(JOB_BOUNDARIES)
        if unknown:
            raise FaultPlanError(
                f"unknown job failure boundaries: {sorted(unknown)}; "
                f"valid: {list(JOB_BOUNDARIES)}")
        object.__setattr__(self, "job_failure_boundaries", boundaries)

    @property
    def injects_anything(self) -> bool:
        return any((self.task_failure_rate, self.job_failure_rate,
                    self.straggler_rate, self.node_loss_rate,
                    self.broadcast_failure_rate))

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["job_failure_boundaries"] = list(self.job_failure_boundaries)
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(payload).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan keys: {sorted(unknown)}")
        if "seed" not in payload:
            raise FaultPlanError("fault plan requires a 'seed'")
        data = dict(payload)
        if "job_failure_boundaries" in data:
            data["job_failure_boundaries"] = tuple(
                data["job_failure_boundaries"])
        try:
            return cls(**data)
        except TypeError as error:
            raise FaultPlanError(f"bad fault plan: {error}") from error

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}") \
                from error
        return cls.from_dict(payload)

    def arm(self) -> "FaultInjector":
        """Fresh injector (mutable run state) for one execution."""
        return FaultInjector(self)


class JobAttempt:
    """Per-(job, incarnation) fault draws for one data-pass attempt.

    All RNG streams are derived from ``(seed, job name, incarnation)``, so
    the same attempt of the same job draws the same faults no matter which
    worker thread runs it or in what order the batch interleaves jobs.
    """

    __slots__ = ("_injector", "job_name", "incarnation", "doomed",
                 "_boundary_rng", "_task_rng", "_straggle_rng")

    def __init__(self, injector: "FaultInjector", job_name: str,
                 incarnation: int, doomed: bool):
        plan = injector.plan
        self._injector = injector
        self.job_name = job_name
        self.incarnation = incarnation
        #: a doomed job fails on *every* attempt (permanent fault).
        self.doomed = doomed
        self._boundary_rng = derived_rng(plan.seed, "job-boundary",
                                         job_name, incarnation)
        self._task_rng = derived_rng(plan.seed, "task-attempt",
                                     job_name, incarnation)
        self._straggle_rng = derived_rng(plan.seed, "straggler",
                                         job_name, incarnation)

    def boundary(self, name: str) -> None:
        """Maybe kill the job at boundary ``name`` (map/reduce/finalize)."""
        injector = self._injector
        plan = injector.plan
        if name == "map" and self.doomed:
            injector.record(f"broadcast-kill job={self.job_name} "
                            f"attempt={self.incarnation}")
            raise TaskRetriesExhaustedError(
                self.job_name, 0,
                detail="injected permanent broadcast failure")
        if plan.job_failure_rate <= 0.0 \
                or name not in plan.job_failure_boundaries:
            return
        draw = self._boundary_rng.random()
        if draw < plan.job_failure_rate \
                and injector.consume_job_failure(self.job_name):
            injector.record(f"job-fault job={self.job_name} "
                            f"attempt={self.incarnation} boundary={name}")
            raise JobFaultInjectedError(self.job_name, name,
                                        self.incarnation)

    def task_inflater(self, max_attempts: int,
                      task_startup_seconds: float,
                      ) -> Callable[[float], float]:
        """Time-inflation function applied to every task of this attempt.

        Models Hadoop retries: each failed attempt re-pays the task plus
        startup; ``max_attempts`` failures kill the job. Stragglers
        multiply the base duration first, so a straggling retry is slow
        every time (it is the *input/node* that is bad, not the attempt).
        """
        injector = self._injector
        plan = injector.plan
        job_name = self.job_name
        task_rng = self._task_rng
        straggle_rng = self._straggle_rng

        def inflate(seconds: float) -> float:
            if plan.straggler_rate > 0.0 \
                    and straggle_rng.random() < plan.straggler_rate:
                seconds *= plan.straggler_factor
                injector.count_straggler()
            if plan.task_failure_rate <= 0.0:
                return seconds
            total = seconds
            failures = 0
            while task_rng.random() < plan.task_failure_rate:
                failures += 1
                if failures >= max_attempts:
                    injector.record(
                        f"task-retries-exhausted job={job_name} "
                        f"attempt={self.incarnation}")
                    raise TaskRetriesExhaustedError(job_name, max_attempts)
                total += seconds + task_startup_seconds
                injector.count_task_retry()
            return total

        return inflate


class FaultInjector:
    """Mutable per-run state of an armed :class:`FaultPlan`.

    Thread-safe: the parallel executor calls into it from worker threads.
    Holds the incarnation counters (fresh draws per retry), the fault
    budgets, pending backoff penalties, and the event log the determinism
    tests compare.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: observability hooks (see :meth:`bind`); default to the no-op
        #: twins so an unbound injector behaves exactly as before.
        self.tracer: Tracer = NULL_TRACER
        self.metrics: MetricsRegistry = NULL_METRICS
        self._lock = threading.Lock()
        self._incarnations: dict[str, int] = {}
        self._job_failures: dict[str, int] = {}
        self._penalties: dict[str, float] = {}
        self._loss_considered: set[str] = set()
        self._losses_fired = 0
        #: ordered log of discrete fault events (job faults, kills,
        #: exhaustions, node losses). High-volume channels (task retries,
        #: stragglers) are tallied instead.
        self.events: list[str] = []
        self.task_retries = 0
        self.stragglers = 0

    @property
    def active(self) -> bool:
        return self.plan.injects_anything

    def bind(self, tracer: Tracer, metrics: MetricsRegistry) -> None:
        """Attach observability sinks; fault events become trace events.

        Injection/recovery decisions are unchanged -- the tracer only
        *sees* what the seeded plan was going to do anyway, so a traced
        faulted run stays byte-identical to an untraced one.
        """
        self.tracer = tracer
        self.metrics = metrics

    # -- attempt lifecycle ------------------------------------------------
    def begin_attempt(self, job) -> JobAttempt:
        with self._lock:
            incarnation = self._incarnations.get(job.name, 0) + 1
            self._incarnations[job.name] = incarnation
        doomed = False
        if self.plan.broadcast_failure_rate > 0.0 and job.is_broadcast_join:
            # One draw per job *name*, not per incarnation: a doomed
            # broadcast stays doomed, so the executor must replan.
            doom_rng = derived_rng(self.plan.seed, "broadcast-doom",
                                   job.name)
            doomed = doom_rng.random() < self.plan.broadcast_failure_rate
        return JobAttempt(self, job.name, incarnation, doomed)

    # -- budgets and tallies ---------------------------------------------
    def consume_job_failure(self, job_name: str) -> bool:
        with self._lock:
            used = self._job_failures.get(job_name, 0)
            if used >= self.plan.max_job_failures:
                return False
            self._job_failures[job_name] = used + 1
            return True

    def count_task_retry(self) -> None:
        with self._lock:
            self.task_retries += 1
        self.metrics.inc("faults.task_retries")

    def count_straggler(self) -> None:
        with self._lock:
            self.stragglers += 1
        self.metrics.inc("faults.stragglers")

    def record(self, event: str) -> None:
        with self._lock:
            self.events.append(event)
        if self.tracer.enabled:
            self.tracer.event("fault", detail=event)
        self.metrics.inc("faults.events")

    # -- backoff penalties ------------------------------------------------
    def add_penalty(self, job_name: str, seconds: float) -> None:
        """Charge ``seconds`` of retry backoff to the job's next schedule."""
        with self._lock:
            self._penalties[job_name] = \
                self._penalties.get(job_name, 0.0) + seconds

    def consume_penalty(self, job_name: str) -> float:
        with self._lock:
            return self._penalties.pop(job_name, 0.0)

    # -- node loss --------------------------------------------------------
    def lose_outputs(self, outputs: Iterable[str]) -> list[str]:
        """Decide which freshly materialized ``outputs`` a node loss eats.

        Each output is considered exactly once per run (re-materialized
        outputs are not re-lost, so recovery always converges), and the
        plan's ``max_node_losses`` budget caps total damage.
        """
        if self.plan.node_loss_rate <= 0.0:
            return []
        lost = []
        for name in outputs:
            with self._lock:
                if name in self._loss_considered:
                    continue
                self._loss_considered.add(name)
                if self._losses_fired >= self.plan.max_node_losses:
                    continue
                draw = derived_rng(self.plan.seed, "node-loss",
                                   name).random()
                if draw < self.plan.node_loss_rate:
                    self._losses_fired += 1
                    self.events.append(f"node-loss output={name}")
                    lost.append(name)
        for name in lost:
            if self.tracer.enabled:
                self.tracer.event("fault", detail=f"node-loss output={name}")
            self.metrics.inc("faults.events")
            self.metrics.inc("faults.node_losses")
        return lost

    # -- reporting --------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic summary used by tests and the CLI report."""
        with self._lock:
            return {
                "events": list(self.events),
                "task_retries": self.task_retries,
                "stragglers": self.stragglers,
                "job_failures": dict(sorted(self._job_failures.items())),
                "node_losses": self._losses_fired,
            }

    def summary(self) -> str:
        snap = self.snapshot()
        return (f"{len(snap['events'])} fault event(s), "
                f"{snap['task_retries']} task retr"
                f"{'y' if snap['task_retries'] == 1 else 'ies'}, "
                f"{snap['stragglers']} straggler(s), "
                f"{snap['node_losses']} node loss(es) "
                f"[seed {self.plan.seed}]")
