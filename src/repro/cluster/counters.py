"""Hadoop-style counters.

The paper computes pilot-run statistics from "the counters exposed by
Hadoop" (Section 4.3): output record counts and output byte counts. We keep
the same grouped-counter structure so statistics code reads identically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class CounterGroup:
    """A named group of integer counters (e.g. ``map``, ``reduce``)."""

    def __init__(self, name: str):
        self.name = name
        self._values: dict[str, int] = defaultdict(int)

    def increment(self, counter: str, delta: int = 1) -> None:
        self._values[counter] += delta

    def get(self, counter: str) -> int:
        return self._values.get(counter, 0)

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._values.items()))


class Counters:
    """All counter groups of one job."""

    # Standard counter names used throughout the runtime.
    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    MAP_INPUT_BYTES = "MAP_INPUT_BYTES"
    MAP_OUTPUT_BYTES = "MAP_OUTPUT_BYTES"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    OUTPUT_RECORDS = "OUTPUT_RECORDS"
    OUTPUT_BYTES = "OUTPUT_BYTES"
    SHUFFLE_BYTES = "SHUFFLE_BYTES"
    BROADCAST_BYTES = "BROADCAST_BYTES"
    SPILLED_BYTES = "SPILLED_BYTES"

    def __init__(self) -> None:
        self._groups: dict[str, CounterGroup] = {}

    def group(self, name: str) -> CounterGroup:
        if name not in self._groups:
            self._groups[name] = CounterGroup(name)
        return self._groups[name]

    def increment(self, group: str, counter: str, delta: int = 1) -> None:
        self.group(group).increment(counter, delta)

    def get(self, group: str, counter: str) -> int:
        if group not in self._groups:
            return 0
        return self._groups[group].get(counter)

    def total(self, counter: str) -> int:
        """Sum of one counter across all groups."""
        return sum(grp.get(counter) for grp in self._groups.values())

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            name: dict(grp.items()) for name, grp in sorted(self._groups.items())
        }
