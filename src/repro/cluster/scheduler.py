"""Discrete-event FIFO slot scheduler.

Reproduces Hadoop 1.x's slot model on the paper's cluster: a fixed pool of
map slots and reduce slots (140/84 by default), a FIFO queue across
concurrently submitted jobs, map tasks running in *waves* when a job has
more tasks than free slots, and reduce tasks of a job becoming runnable only
once all its map tasks finish.

The scheduler consumes pre-computed task durations (from the analytic cost
model) and produces per-job timelines plus the batch makespan. It is what
makes multi-job effects visible in experiments: PILR_MT beats PILR_ST by
sharing one wave across relations (Table 1), and the SIMPLE_MO strategy
beats SIMPLE_SO by overlapping jobs (Figure 5).
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field, replace

from repro.errors import JobError
from repro.obs.tracer import NULL_TRACER, Tracer


def plan_speculative_backups(durations: list[float],
                             threshold: float,
                             ) -> tuple[list[float], list[float]]:
    """Model Hadoop's speculative execution over one job's task durations.

    A task whose duration exceeds ``threshold x median + median`` gets a
    backup copy launched at the threshold point; the backup (running at
    median speed) wins, so the task's *effective* duration is capped at
    ``threshold x median + median``. The backup copy itself still occupies
    a slot for ``median`` seconds -- returned separately as a "phantom"
    task that consumes cluster capacity without gating job completion.

    Returns ``(effective_durations, phantom_durations)``. With fewer than
    3 tasks there is no meaningful median and nothing is speculated.
    """
    if len(durations) < 3:
        return list(durations), []
    ordered = sorted(durations)
    median = ordered[len(ordered) // 2]
    if median <= 0.0:
        return list(durations), []
    cap = threshold * median + median
    effective: list[float] = []
    phantoms: list[float] = []
    for duration in durations:
        if duration > cap:
            effective.append(cap)
            phantoms.append(median)
        else:
            effective.append(duration)
    return effective, phantoms


@dataclass
class ScheduledJob:
    """One job's scheduling inputs."""

    job_id: str
    map_durations: list[float]
    reduce_durations: list[float] = field(default_factory=list)
    startup_seconds: float = 0.0
    submit_time: float = 0.0
    depends_on: list[str] = field(default_factory=list)
    #: declared build/buffer memory demand, held against the scheduler's
    #: cluster memory pool from task start to job finish. 0 never waits.
    memory_bytes: int = 0


@dataclass
class JobTimeline:
    """When one job started and finished in simulated time."""

    job_id: str
    ready_time: float = 0.0
    start_time: float = 0.0
    map_finish_time: float = 0.0
    finish_time: float = 0.0
    #: time spent queued for cluster memory after startup, before any
    #: task could be dispatched (0 when the pool admitted it at once).
    memory_wait_seconds: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.finish_time - self.ready_time


@dataclass
class ScheduleResult:
    timelines: dict[str, JobTimeline]
    makespan: float


@dataclass
class _CallState:
    """Per-``schedule()`` bookkeeping.

    Kept off the scheduler instance so concurrent ``schedule()`` calls
    (the multi-query service shares one :class:`SlotScheduler` across
    driver threads) never observe each other's freed-slot counts or
    speculative phantom tasks.
    """

    freed_map: int = 0
    freed_reduce: int = 0
    phantom_maps: dict[str, list[float]] = field(default_factory=dict)
    phantom_reduces: dict[str, list[float]] = field(default_factory=dict)
    #: cluster memory pool accounting for this batch.
    free_memory: int = 0
    memory_held: dict[str, int] = field(default_factory=dict)
    #: jobs past startup, queued (FIFO) for memory: (job_id, demand).
    memory_queue: deque[tuple[str, int]] = field(default_factory=deque)
    memory_wait_start: dict[str, float] = field(default_factory=dict)
    used_memory_peak: int = 0


#: Scheduling policies. The paper uses Hadoop's FIFO scheduler "so as to
#: maximize the utilization of the cluster resources" and leaves the fair
#: and capacity schedulers as future work (Section 6.3); ``fair`` is
#: implemented here for that experiment.
POLICY_FIFO = "fifo"
POLICY_FAIR = "fair"


class _TaskQueue:
    """Pending tasks of one slot pool, drained per the scheduling policy."""

    def __init__(self, policy: str):
        self._policy = policy
        self._fifo: deque[tuple[str, float, str]] = deque()
        self._per_job: dict[str, deque[tuple[float, str]]] = {}
        self._rotation: deque[str] = deque()

    def push(self, job_id: str, duration: float,
             kind: str = "task") -> None:
        if self._policy == POLICY_FIFO:
            self._fifo.append((job_id, duration, kind))
            return
        if job_id not in self._per_job:
            self._per_job[job_id] = deque()
            self._rotation.append(job_id)
        self._per_job[job_id].append((duration, kind))

    def pop(self) -> tuple[str, float, str]:
        if self._policy == POLICY_FIFO:
            return self._fifo.popleft()
        # Fair: serve the next job in the rotation that has tasks left.
        while True:
            job_id = self._rotation[0]
            self._rotation.rotate(-1)
            tasks = self._per_job[job_id]
            if tasks:
                duration, kind = tasks.popleft()
                if not tasks:
                    del self._per_job[job_id]
                    self._rotation.remove(job_id)
                return job_id, duration, kind
            del self._per_job[job_id]
            self._rotation.remove(job_id)

    def __bool__(self) -> bool:
        if self._policy == POLICY_FIFO:
            return bool(self._fifo)
        return any(self._per_job.values())


class SlotScheduler:
    """Event-driven simulation of slot scheduling.

    ``fifo`` drains queued tasks in submission order (Hadoop 1.x default).
    ``fair`` interleaves runnable jobs round-robin, giving each job with
    pending tasks an equal share of freed slots -- concurrent jobs finish
    closer together at the cost of the first job's latency.
    """

    def __init__(self, map_slots: int, reduce_slots: int,
                 policy: str = POLICY_FIFO, speculative: bool = False,
                 speculative_threshold: float = 3.0,
                 tracer: Tracer | None = None,
                 memory_pool_bytes: int = 0):
        if map_slots <= 0 or reduce_slots <= 0:
            raise JobError("slot counts must be positive")
        if policy not in (POLICY_FIFO, POLICY_FAIR):
            raise JobError(f"unknown scheduling policy: {policy!r}")
        if speculative_threshold <= 1.0:
            raise JobError("speculative_slowdown_threshold must be > 1.0")
        if memory_pool_bytes < 0:
            raise JobError("memory_pool_bytes must be >= 0")
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.policy = policy
        self.speculative = speculative
        self.speculative_threshold = speculative_threshold
        self.tracer = tracer or NULL_TRACER
        #: cluster-wide memory pool charged by jobs' declared demands;
        #: 0 disables memory governance entirely (no demand, no waits).
        self.memory_pool_bytes = memory_pool_bytes

    def schedule(self, jobs: list[ScheduledJob]) -> ScheduleResult:
        """Simulate ``jobs`` sharing the cluster; returns per-job timelines."""
        if not jobs:
            return ScheduleResult({}, 0.0)
        state = _CallState(free_memory=self.memory_pool_bytes)
        jobs = self._apply_speculation(jobs, state)
        by_id = {job.job_id: job for job in jobs}
        if len(by_id) != len(jobs):
            raise JobError("duplicate job ids in batch")
        for job in jobs:
            for dep in job.depends_on:
                if dep not in by_id:
                    raise JobError(
                        f"job {job.job_id!r} depends on unknown job {dep!r}"
                    )

        timelines = {job.job_id: JobTimeline(job.job_id) for job in jobs}
        remaining_maps = {j.job_id: len(j.map_durations) for j in jobs}
        remaining_reduces = {j.job_id: len(j.reduce_durations) for j in jobs}
        unfinished_deps = {
            j.job_id: set(j.depends_on) for j in jobs
        }
        finished: set[str] = set()

        map_queue = _TaskQueue(self.policy)
        reduce_queue = _TaskQueue(self.policy)
        free_map = self.map_slots
        free_reduce = self.reduce_slots

        # Event heap entries: (time, seq, kind, payload). ``seq`` breaks ties
        # deterministically in submission order.
        sequence = itertools.count()
        events: list[tuple[float, int, str, object]] = []

        def push_event(time: float, kind: str, payload: object) -> None:
            heapq.heappush(events, (time, next(sequence), kind, payload))

        def arm_job(job_id: str, now: float) -> None:
            """All dependencies met: pay startup, then enqueue map tasks."""
            job = by_id[job_id]
            timelines[job_id].ready_time = now
            push_event(now + job.startup_seconds, "job_start", job_id)

        def finish_job(job_id: str, now: float) -> None:
            finished.add(job_id)
            timelines[job_id].finish_time = now
            released = state.memory_held.pop(job_id, 0)
            if released:
                state.free_memory += released
                # Admit memory waiters strictly in FIFO order: the head
                # blocks everyone behind it (no bypass), which keeps
                # memory admission deterministic and starvation-free.
                while (state.memory_queue
                       and state.memory_queue[0][1] <= state.free_memory):
                    waiter_id, demand = state.memory_queue.popleft()
                    self._acquire_memory(state, waiter_id, demand)
                    push_event(now, "job_tasks", waiter_id)
            for other in jobs:
                if job_id in unfinished_deps[other.job_id]:
                    unfinished_deps[other.job_id].discard(job_id)
                    if not unfinished_deps[other.job_id]:
                        arm_job(other.job_id, now)

        # Jobs with no dependencies arm at their submit time.
        for job in jobs:
            if not job.depends_on:
                arm_job(job.job_id, job.submit_time)

        while events:
            now = events[0][0]
            # Process every event at this instant before dispatching, so
            # simultaneously-started jobs compete for slots under the
            # policy rather than in event order.
            while events and events[0][0] == now:
                self._handle_event(
                    heapq.heappop(events), by_id, timelines,
                    remaining_maps, remaining_reduces, map_queue,
                    reduce_queue, finish_job, state,
                )
            free_map, free_reduce = self._dispatch(
                now, map_queue, reduce_queue, free_map, free_reduce,
                push_event, state,
            )

        unreached = [job.job_id for job in jobs if job.job_id not in finished]
        if unreached:
            raise JobError(
                f"dependency cycle or unscheduled jobs: {unreached}"
            )
        # Makespan is when the last *job* finishes; a speculative backup
        # copy releasing its slot later does not extend the batch.
        makespan = max(t.finish_time for t in timelines.values())
        if self.tracer.enabled:
            self._trace_batch(jobs, makespan, state, timelines)
        return ScheduleResult(timelines, makespan)

    def _trace_batch(self, jobs: list[ScheduledJob],
                     makespan: float, state: _CallState,
                     timelines: dict[str, JobTimeline]) -> None:
        """One summary event per scheduled batch: load and utilization.

        Utilization is aggregate task seconds (including speculative
        backup copies, which really burn capacity) over the batch's total
        slot-seconds -- the signal for judging strategy parallelism
        trade-offs (Figure 5) from a trace alone.
        """
        map_seconds = sum(sum(job.map_durations) for job in jobs) + sum(
            sum(phantoms) for phantoms in state.phantom_maps.values()
        )
        reduce_seconds = sum(
            sum(job.reduce_durations) for job in jobs
        ) + sum(
            sum(phantoms) for phantoms in state.phantom_reduces.values()
        )
        capacity = makespan * (self.map_slots + self.reduce_slots)
        self.tracer.event(
            "schedule",
            jobs=len(jobs),
            policy=self.policy,
            makespan_s=round(makespan, 6),
            map_task_s=round(map_seconds, 6),
            reduce_task_s=round(reduce_seconds, 6),
            utilization=round(
                (map_seconds + reduce_seconds) / capacity, 6
            ) if capacity > 0 else 0.0,
            memory_pool_bytes=self.memory_pool_bytes,
            memory_peak_bytes=state.used_memory_peak,
            memory_wait_s=round(sum(
                timeline.memory_wait_seconds
                for timeline in timelines.values()
            ), 6),
        )

    def _apply_speculation(self, jobs: list[ScheduledJob],
                           state: _CallState) -> list[ScheduledJob]:
        """Cap straggling task durations; stash backup-copy phantom tasks.

        Populates ``state.phantom_maps`` / ``state.phantom_reduces`` for
        the current ``schedule()`` call; phantoms occupy slots (they are
        real backup copies burning capacity) but never gate completion.
        """
        if not self.speculative:
            return jobs
        speculated: list[ScheduledJob] = []
        for job in jobs:
            map_eff, map_backups = plan_speculative_backups(
                job.map_durations, self.speculative_threshold)
            reduce_eff, reduce_backups = plan_speculative_backups(
                job.reduce_durations, self.speculative_threshold)
            if map_backups or reduce_backups:
                job = replace(job, map_durations=map_eff,
                              reduce_durations=reduce_eff)
                state.phantom_maps[job.job_id] = map_backups
                state.phantom_reduces[job.job_id] = reduce_backups
                # Backup copies re-load the job's working set (broadcast
                # builds in particular), so they inflate the declared
                # memory demand by the backed-up tasks' share.
                backups = len(map_backups) + len(reduce_backups)
                tasks = len(job.map_durations) + len(job.reduce_durations)
                if job.memory_bytes and tasks:
                    extra = math.ceil(job.memory_bytes * backups / tasks)
                    job = replace(job,
                                  memory_bytes=job.memory_bytes + extra)
            speculated.append(job)
        return speculated

    def _handle_event(self, event, by_id, timelines, remaining_maps,
                      remaining_reduces, map_queue, reduce_queue,
                      finish_job, state: _CallState) -> None:
        now, _, kind, payload = event
        job_id: str = payload  # type: ignore[assignment]
        if kind == "job_start":
            # Startup is paid; the job now needs its declared memory
            # before any task can be dispatched. A job behind a waiting
            # one also waits (FIFO), even if its own demand would fit.
            demand = self._memory_demand(by_id[job_id])
            if demand and (state.memory_queue
                           or state.free_memory < demand):
                state.memory_queue.append((job_id, demand))
                state.memory_wait_start[job_id] = now
                return
            if demand:
                self._acquire_memory(state, job_id, demand)
            self._start_tasks(job_id, now, by_id, timelines, map_queue,
                              reduce_queue, finish_job, state)
        elif kind == "job_tasks":
            # Memory was granted (in finish_job's FIFO drain); record the
            # wait and start the job's tasks.
            waited_since = state.memory_wait_start.pop(job_id, now)
            timelines[job_id].memory_wait_seconds = now - waited_since
            self._start_tasks(job_id, now, by_id, timelines, map_queue,
                              reduce_queue, finish_job, state)
        elif kind == "map_done":
            state.freed_map += 1
            remaining_maps[job_id] -= 1
            if remaining_maps[job_id] == 0:
                timelines[job_id].map_finish_time = now
                job = by_id[job_id]
                if job.reduce_durations:
                    for duration in job.reduce_durations:
                        reduce_queue.push(job_id, duration, "reduce_done")
                    for duration in state.phantom_reduces.get(job_id, ()):
                        reduce_queue.push(job_id, duration,
                                          "spec_reduce_done")
                else:
                    finish_job(job_id, now)
        elif kind == "reduce_done":
            state.freed_reduce += 1
            remaining_reduces[job_id] -= 1
            if remaining_reduces[job_id] == 0:
                finish_job(job_id, now)
        elif kind == "spec_map_done":
            # Backup copy of a straggling map task released its slot.
            state.freed_map += 1
        elif kind == "spec_reduce_done":
            state.freed_reduce += 1
        else:  # pragma: no cover - defensive
            raise JobError(f"unknown event kind: {kind!r}")

    def _memory_demand(self, job: ScheduledJob) -> int:
        """Declared demand clamped to the pool (oversized jobs run alone)."""
        if self.memory_pool_bytes <= 0 or job.memory_bytes <= 0:
            return 0
        return min(job.memory_bytes, self.memory_pool_bytes)

    def _acquire_memory(self, state: _CallState, job_id: str,
                        demand: int) -> None:
        state.free_memory -= demand
        state.memory_held[job_id] = demand
        used = self.memory_pool_bytes - state.free_memory
        state.used_memory_peak = max(state.used_memory_peak, used)

    def _start_tasks(self, job_id, now, by_id, timelines, map_queue,
                     reduce_queue, finish_job, state: _CallState) -> None:
        job = by_id[job_id]
        timelines[job_id].start_time = now
        if not job.map_durations:
            # A job with no map tasks reaches its map-finish point
            # immediately; its reduce tasks (if any) must still be
            # queued -- an early return here left reduce-only jobs
            # permanently unscheduled.
            timelines[job_id].map_finish_time = now
            if not job.reduce_durations:
                finish_job(job_id, now)
                return
            for duration in job.reduce_durations:
                reduce_queue.push(job_id, duration, "reduce_done")
            for duration in state.phantom_reduces.get(job_id, ()):
                reduce_queue.push(job_id, duration, "spec_reduce_done")
            return
        for duration in job.map_durations:
            map_queue.push(job_id, duration, "map_done")
        for duration in state.phantom_maps.get(job_id, ()):
            map_queue.push(job_id, duration, "spec_map_done")

    def _dispatch(self, now, map_queue, reduce_queue, free_map,
                  free_reduce, push_event, state: _CallState,
                  ) -> tuple[int, int]:
        """Fill freed slots from the queues under the active policy."""
        free_map += state.freed_map
        free_reduce += state.freed_reduce
        state.freed_map = 0
        state.freed_reduce = 0
        while free_map > 0 and map_queue:
            job_id, duration, kind = map_queue.pop()
            free_map -= 1
            push_event(now + duration, kind, job_id)
        while free_reduce > 0 and reduce_queue:
            job_id, duration, kind = reduce_queue.pop()
            free_reduce -= 1
            push_event(now + duration, kind, job_id)
        return free_map, free_reduce
