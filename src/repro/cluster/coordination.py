"""Coordination service: single-process ZooKeeper stand-in.

The paper uses ZooKeeper in two places (Sections 4.2 and 5.4):

* pilot runs keep a *global output counter* per leaf expression; map tasks
  increment it as they emit records and the job is interrupted once the
  counter crosses ``k``;
* online statistics collection has every finished task publish the URL of
  its partial-statistics file under a job-scoped node, which the Jaql client
  reads and merges once the job completes.

This module reproduces both patterns with the same API shape (counters and
ephemeral znode-like entries) so the rest of the code reads like the system
described in the paper.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any

from repro.errors import CoordinationError


class SharedCounter:
    """A named monotonically-updated counter (pilot-run k-counter).

    Increments are atomic: tasks of concurrently-executing jobs (see
    ``repro.cluster.parallel``) may share a counter, just as the paper's
    map tasks share one ZooKeeper counter per leaf expression.
    """

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def increment(self, delta: int = 1) -> int:
        if delta < 0:
            raise CoordinationError("counter increments must be non-negative")
        with self._lock:
            self.value += delta
            return self.value


class CoordinationService:
    """Counters plus a hierarchical key/value registry of published entries.

    Thread-safe: counter creation and entry publication are guarded by a
    lock so tasks of concurrently-executing jobs can publish their partial
    statistics, mirroring ZooKeeper's own linearizable writes.
    """

    def __init__(self) -> None:
        self._counters: dict[str, SharedCounter] = {}
        self._registry: dict[str, dict[str, Any]] = defaultdict(dict)
        self._lock = threading.Lock()

    # -- counters -------------------------------------------------------------

    def counter(self, name: str) -> SharedCounter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = SharedCounter(name)
            return self._counters[name]

    def reset_counter(self, name: str) -> None:
        with self._lock:
            self._counters.pop(name, None)

    # -- registry (znode-like publication) -------------------------------------

    def publish(self, scope: str, key: str, value: Any) -> None:
        """Publish an entry under ``scope`` (e.g. partial-stats 'URL')."""
        with self._lock:
            entries = self._registry[scope]
            if key in entries:
                raise CoordinationError(
                    f"entry {key!r} already published under {scope!r}"
                )
            entries[key] = value

    def entries(self, scope: str) -> dict[str, Any]:
        """All entries published under ``scope`` (copy)."""
        with self._lock:
            return dict(self._registry.get(scope, {}))

    def clear_scope(self, scope: str) -> None:
        with self._lock:
            self._registry.pop(scope, None)
