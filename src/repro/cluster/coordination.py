"""Coordination service: single-process ZooKeeper stand-in.

The paper uses ZooKeeper in two places (Sections 4.2 and 5.4):

* pilot runs keep a *global output counter* per leaf expression; map tasks
  increment it as they emit records and the job is interrupted once the
  counter crosses ``k``;
* online statistics collection has every finished task publish the URL of
  its partial-statistics file under a job-scoped node, which the Jaql client
  reads and merges once the job completes.

This module reproduces both patterns with the same API shape (counters and
ephemeral znode-like entries) so the rest of the code reads like the system
described in the paper.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.errors import CoordinationError


class SharedCounter:
    """A named monotonically-updated counter (pilot-run k-counter)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, delta: int = 1) -> int:
        if delta < 0:
            raise CoordinationError("counter increments must be non-negative")
        self.value += delta
        return self.value


class CoordinationService:
    """Counters plus a hierarchical key/value registry of published entries."""

    def __init__(self) -> None:
        self._counters: dict[str, SharedCounter] = {}
        self._registry: dict[str, dict[str, Any]] = defaultdict(dict)

    # -- counters -------------------------------------------------------------

    def counter(self, name: str) -> SharedCounter:
        if name not in self._counters:
            self._counters[name] = SharedCounter(name)
        return self._counters[name]

    def reset_counter(self, name: str) -> None:
        self._counters.pop(name, None)

    # -- registry (znode-like publication) -------------------------------------

    def publish(self, scope: str, key: str, value: Any) -> None:
        """Publish an entry under ``scope`` (e.g. partial-stats 'URL')."""
        entries = self._registry[scope]
        if key in entries:
            raise CoordinationError(
                f"entry {key!r} already published under {scope!r}"
            )
        entries[key] = value

    def entries(self, scope: str) -> dict[str, Any]:
        """All entries published under ``scope`` (copy)."""
        return dict(self._registry.get(scope, {}))

    def clear_scope(self, scope: str) -> None:
        self._registry.pop(scope, None)
