"""Changing-data scenario family: standing queries + CDC batches.

Builds on the weblog domain (:mod:`repro.workloads.weblogs`) because its
aggregates are integer-valued (``count``, ``sum(dwell_ms)``), so
incremental group merges are exact -- the differential oracle can demand
byte-identical results without floating-point caveats.

Two standing queries cover both maintenance shapes:

* **WeblogEngagement** (reused from the weblog workload) -- 3-way join
  with a GROUP BY core (count/sum) and an ORDER BY tail; delta-eligible
  for append-only batches;
* **PremiumSessions** (defined here) -- a pure-join query with a
  projection tail and no aggregation; delta-eligible for inserts *and*
  deletes (union / multiset-subtract maintenance).

The default scenario's steps are chosen so the cardinality rule
demonstrably goes both ways: a 1% append-only batch refreshes via delta
joins, a 50% batch tips past the threshold into a full recompute, and a
mixed update/delete batch on ``users`` forces the GROUP BY query full
while the pure-join query still maintains incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.table import Table
from repro.jaql.functions import Udf, UdfRegistry
from repro.jaql.parser import SqlParser
from repro.workloads.queries import Workload
from repro.workloads.weblogs import (
    generate_weblogs,
    is_human,
    weblog_engagement,
)

__all__ = [
    "DEFAULT_STEPS",
    "KEY_COLUMNS",
    "ScenarioStep",
    "changing_tables",
    "changing_udfs",
    "premium_sessions",
    "standing_workloads",
]

#: CDC key column per weblog table (what deletes/updates match on).
KEY_COLUMNS = {
    "pageviews": "eventid",
    "users": "userid",
    "pages": "url",
}


@dataclass(frozen=True)
class ScenarioStep:
    """One change batch of a scenario: which table, how much, what mix."""

    table: str
    change_rate: float
    #: (insert, update, delete) weights; default append-only.
    mix: tuple[float, float, float] = (1.0, 0.0, 0.0)


#: The default mixed scenario (see the module docstring for why each
#: step is there). Deterministic given the generator seed.
DEFAULT_STEPS: tuple[ScenarioStep, ...] = (
    ScenarioStep("pageviews", 0.01),
    ScenarioStep("users", 0.05, (0.0, 1.0, 1.0)),
    ScenarioStep("pageviews", 0.50),
)


def changing_tables(scale_factor: float = 1.0,
                    seed: int = 23) -> dict[str, Table]:
    """Deterministic weblog tables sized for the changing scenario."""
    return generate_weblogs(
        user_count=max(20, int(500 * scale_factor)),
        page_count=max(10, int(200 * scale_factor)),
        event_count=max(200, int(20_000 * scale_factor)),
        seed=seed,
    )


def changing_udfs() -> UdfRegistry:
    """Every UDF the standing queries need, in one registry."""
    udfs = UdfRegistry()
    udfs.register(Udf("is_human", is_human, cost_seconds=0.0005))
    return udfs


def premium_sessions() -> Workload:
    """Long sessions of US users: a pure-join standing query.

    No GROUP BY -- the maintained state is the join result itself, so
    delta maintenance must handle deletes (multiset subtraction), which
    the aggregate queries never exercise.
    """
    udfs = UdfRegistry()
    sql = """
        SELECT pv.eventid AS eventid, u.country AS country,
               pv.dwell_ms AS dwell
        FROM pageviews pv, users u
        WHERE pv.userid = u.userid
        AND pv.dwell_ms >= 30000
        AND u.country = 'US'
    """
    spec = SqlParser(udfs).parse(sql, "PremiumSessions")
    return Workload(
        "PremiumSessions", [(spec, None)], udfs,
        description="long US sessions (pure join; exercises "
                    "insert+delete delta maintenance)",
        tables=("pageviews", "users"),
    )


def standing_workloads() -> list[Workload]:
    """The standing queries of the changing scenario, in registration
    order (deterministic seeding and refresh ordering)."""
    return [weblog_engagement(), premium_sessions()]
