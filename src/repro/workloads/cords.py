"""CORDS-style correlation discovery (paper reference [26]).

The paper used CORDS offline to identify the correlated predicate pair it
added to Q8' ("correlations were identified using the CORDS algorithm",
Section 6.1). This module reproduces the sample-based core of CORDS: for
every pair of candidate columns it estimates a chi-squared-style
association strength and the degree of *soft functional dependency*
(fraction of values of X that map to a single value of Y), flagging pairs
whose joint distribution deviates strongly from independence.

Running it on the generated ``orders`` table rediscovers the injected
``o_orderzone -> o_orderregion`` dependency, and running it on the
restaurant data rediscovers ``zip -> state``.
"""

from __future__ import annotations

import itertools
import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Callable

from repro.data.table import Row, Table

#: Columns with more distinct values than this in the sample are skipped,
#: as CORDS does (association statistics over near-key columns are noise).
DEFAULT_MAX_DISTINCT = 256


@dataclass(frozen=True)
class ColumnPairCorrelation:
    """Association measurements for one ordered column pair (x -> y)."""

    x: str
    y: str
    #: mean-square contingency (normalized chi-squared, in [0, 1]).
    phi_squared: float
    #: fraction of sampled x-values that map to exactly one y-value.
    functional_strength: float
    sample_size: int

    @property
    def is_soft_functional_dependency(self) -> bool:
        return self.functional_strength >= 0.99

    def describe(self) -> str:
        kind = ("soft FD" if self.is_soft_functional_dependency
                else "correlated")
        return (f"{self.x} -> {self.y}: phi^2={self.phi_squared:.3f}, "
                f"fd={self.functional_strength:.3f} ({kind})")


def _sample_rows(table: Table, sample_size: int, seed: int) -> list[Row]:
    if len(table.rows) <= sample_size:
        return list(table.rows)
    rng = random.Random(seed)
    return rng.sample(table.rows, sample_size)


def _phi_squared(pairs: list[tuple[Any, Any]]) -> float:
    """Mean-square contingency of the joint sample (chi^2 / n, normalized)."""
    n = len(pairs)
    if n == 0:
        return 0.0
    joint = Counter(pairs)
    x_margin = Counter(x for x, _ in pairs)
    y_margin = Counter(y for _, y in pairs)
    if len(x_margin) < 2 or len(y_margin) < 2:
        return 0.0
    chi2 = 0.0
    for (x, y), observed in joint.items():
        expected = x_margin[x] * y_margin[y] / n
        chi2 += (observed - expected) ** 2 / expected
    # Cramer-style normalization keeps the statistic in [0, 1].
    denominator = n * (min(len(x_margin), len(y_margin)) - 1)
    return min(1.0, chi2 / denominator) if denominator else 0.0


def _functional_strength(pairs: list[tuple[Any, Any]]) -> float:
    images: dict[Any, set[Any]] = defaultdict(set)
    for x, y in pairs:
        images[x].add(y)
    if not images:
        return 0.0
    unique = sum(1 for targets in images.values() if len(targets) == 1)
    return unique / len(images)


def discover_correlations(
    table: Table,
    columns: list[str] | None = None,
    sample_size: int = 2000,
    seed: int = 17,
    max_distinct: int = DEFAULT_MAX_DISTINCT,
    min_phi_squared: float = 0.3,
    value_of: Callable[[Row, str], Any] | None = None,
) -> list[ColumnPairCorrelation]:
    """Find correlated column pairs of ``table`` from a row sample.

    Returns pairs ordered by descending association strength; only pairs
    whose ``phi_squared`` reaches ``min_phi_squared`` are reported.
    ``value_of`` customizes value extraction (e.g. nested paths).
    """
    names = columns if columns is not None else list(table.schema.names)
    rows = _sample_rows(table, sample_size, seed)
    getter = value_of or (lambda row, name: row.get(name))

    values: dict[str, list[Any]] = {name: [] for name in names}
    for row in rows:
        for name in names:
            values[name].append(getter(row, name))

    usable = [
        name for name in names
        if 2 <= len(set(filter(lambda v: v is not None, values[name])))
        <= max_distinct
    ]

    findings: list[ColumnPairCorrelation] = []
    for x, y in itertools.permutations(usable, 2):
        pairs = [
            (vx, vy) for vx, vy in zip(values[x], values[y])
            if vx is not None and vy is not None
        ]
        phi2 = _phi_squared(pairs)
        if phi2 < min_phi_squared:
            continue
        findings.append(ColumnPairCorrelation(
            x=x, y=y,
            phi_squared=phi2,
            functional_strength=_functional_strength(pairs),
            sample_size=len(pairs),
        ))
    findings.sort(key=lambda f: (-f.phi_squared, -f.functional_strength,
                                 f.x, f.y))
    return findings
