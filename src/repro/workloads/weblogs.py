"""Log-analysis workload: the paper's other motivating domain.

The introduction positions large-scale platforms for "log analysis over
semi-structured data" with nested structures "pervasive as users are
commonly storing data in denormalized form". This workload exercises
exactly that shape outside TPC-H:

* ``pageviews`` -- semi-structured click events with a nested ``client``
  struct (user agent, IP) and an array of tags;
* ``users`` and ``pages`` -- small dimensions;
* a ``is_human`` UDF over the nested user agent (bot filtering -- the
  classic opaque predicate of log pipelines) plus a correlated pair
  (browser family determines rendering engine) for CORDS to find.
"""

from __future__ import annotations

import random

from repro.data.schema import (
    BOOL,
    INT,
    STRING,
    FieldType,
    Schema,
)
from repro.data.table import Row, Table
from repro.jaql.functions import Udf, UdfRegistry
from repro.jaql.parser import SqlParser
from repro.workloads.queries import Workload

#: browser family -> rendering engine: a functional dependency baked into
#: the generated user agents (CORDS rediscovers it; an optimizer that
#: multiplies the two predicates' selectivities under-counts).
ENGINE_OF_BROWSER = {
    "chrome": "blink",
    "edge": "blink",
    "safari": "webkit",
    "firefox": "gecko",
    "bot": "none",
}

CLIENT_TYPE = FieldType.struct(
    ua=STRING, browser=STRING, engine=STRING, ip=STRING,
)
PAGEVIEW_SCHEMA = Schema.of(
    eventid=INT,
    userid=INT,
    url=STRING,
    client=CLIENT_TYPE,
    tags=FieldType.array(STRING),
    dwell_ms=INT,
)
USER_SCHEMA = Schema.of(
    userid=INT, country=STRING, premium=BOOL,
)
PAGE_SCHEMA = Schema.of(
    url=STRING, category=STRING, weight=INT,
)

COUNTRIES = ["US", "DE", "JP", "BR", "IN", "FR"]
CATEGORIES = ["news", "sports", "video", "shop", "docs"]
TAGS = ["promo", "organic", "email", "social", "direct"]


def generate_weblogs(user_count: int = 500, page_count: int = 200,
                     event_count: int = 20000,
                     bot_fraction: float = 0.3,
                     seed: int = 23) -> dict[str, Table]:
    """Deterministic click-log dataset with nested client structs."""
    rng = random.Random(seed)

    users = [
        {
            "userid": key,
            "country": rng.choice(COUNTRIES),
            "premium": rng.random() < 0.2,
        }
        for key in range(1, user_count + 1)
    ]
    pages = [
        {
            "url": f"/p/{key}",
            "category": rng.choice(CATEGORIES),
            "weight": rng.randint(1, 100),
        }
        for key in range(1, page_count + 1)
    ]

    browsers = list(ENGINE_OF_BROWSER)
    pageviews: list[Row] = []
    for key in range(1, event_count + 1):
        if rng.random() < bot_fraction:
            browser = "bot"
        else:
            browser = rng.choice([b for b in browsers if b != "bot"])
        engine = ENGINE_OF_BROWSER[browser]
        pageviews.append({
            "eventid": key,
            "userid": rng.randint(1, user_count),
            "url": f"/p/{rng.randint(1, page_count)}",
            "client": {
                "ua": f"{browser}/{rng.randint(80, 120)}.0",
                "browser": browser,
                "engine": engine,
                "ip": f"10.{rng.randint(0, 255)}.{rng.randint(0, 255)}.1",
            },
            "tags": rng.sample(TAGS, k=rng.randint(1, 3)),
            "dwell_ms": rng.randint(10, 60_000),
        })

    return {
        "pageviews": Table("pageviews", PAGEVIEW_SCHEMA, pageviews),
        "users": Table("users", USER_SCHEMA, users),
        "pages": Table("pages", PAGE_SCHEMA, pages),
    }


def is_human(user_agent: object) -> bool:
    """Bot filter over the nested user agent string."""
    return isinstance(user_agent, str) and not user_agent.startswith("bot/")


def weblog_engagement() -> Workload:
    """Human engagement by country and category.

    A 3-way join whose fact-side predicates are a nested-path comparison
    and a UDF -- both invisible to a traditional optimizer, both measured
    by pilot runs.
    """
    udfs = UdfRegistry()
    udfs.register(Udf("is_human", is_human, cost_seconds=0.0005))
    sql = """
        SELECT u.country AS country, p.category AS category,
               count(*) AS views, sum(pv.dwell_ms) AS dwell
        FROM pageviews pv, users u, pages p
        WHERE pv.userid = u.userid
        AND pv.url = p.url
        AND is_human(pv.client.ua)
        AND pv.dwell_ms >= 1000
        GROUP BY u.country, p.category
        ORDER BY dwell DESC
    """
    spec = SqlParser(udfs).parse(sql, "WeblogEngagement")
    return Workload(
        "WeblogEngagement", [(spec, None)], udfs,
        description="human engagement by country x category over the "
                    "click log (nested structs + bot-filter UDF)",
        tables=("pageviews", "users", "pages"),
    )


def weblog_premium_blink() -> Workload:
    """Premium users on Blink-engine browsers.

    Carries the correlated pair (``client.browser = 'chrome'`` implies
    ``client.engine = 'blink'``) -- the log-domain twin of Q8''s
    zone/region predicates.
    """
    udfs = UdfRegistry()
    sql = """
        SELECT u.userid AS userid, count(*) AS views
        FROM pageviews pv, users u
        WHERE pv.userid = u.userid
        AND pv.client.browser = 'chrome'
        AND pv.client.engine = 'blink'
        AND u.premium = 1
        GROUP BY u.userid
    """
    # `u.premium = 1` would be a type mismatch for bool; express via parse
    # tree surgery instead: compare against True.
    spec = SqlParser(udfs).parse(sql.replace("AND u.premium = 1", ""),
                                 "WeblogPremium")
    from repro.jaql.expr import (
        Comparison,
        Filter,
        GroupBy,
        OrderBy,
        Project,
        QuerySpec,
        ref,
    )

    def add_premium_filter(node):
        # Insert the boolean predicate directly above the join tree (the
        # rewriter pushes it to the users scan afterwards).
        if isinstance(node, (Project, GroupBy, OrderBy)):
            child = add_premium_filter(node.children()[0])
            return node.with_children((child,))
        return Filter(node, Comparison(ref("u", "premium"), "=", True))

    spec = QuerySpec(spec.name, add_premium_filter(spec.root))
    return Workload(
        "WeblogPremium", [(spec, None)], udfs,
        description="premium Chrome users (correlated browser/engine "
                    "predicates on nested paths)",
        tables=("pageviews", "users"),
    )
