"""Mixed serving workload: TPC-H plus the weblog domain, with repeats.

The QueryService's acceptance scenario (ISSUE 4): a batch of queries from
*both* generated domains against one shared platform, with repeated
queries so Section 4.1's statistics reuse and the plan cache have
something to hit. The batch is a function only of its arguments -- every
factory call builds identical specs, and leaf/UDF signatures are stable
across calls (``Udf.signature()`` is ``name@version``), which is exactly
what cross-query reuse keys on.
"""

from __future__ import annotations

from repro.data.table import Table
from repro.data.tpch import generate_tpch
from repro.jaql.functions import UdfRegistry
from repro.service.service import QueryRequest
from repro.workloads.queries import Workload, q3, q10
from repro.workloads.weblogs import (
    generate_weblogs,
    weblog_engagement,
    weblog_premium_blink,
)

#: factories of the batch, in submission order; repeats are the point.
MIXED_SEQUENCE = (
    q3,                    # cold: pilots for customer/orders/lineitem
    weblog_engagement,     # cold: pilots for pageviews/users/pages
    q3,                    # warm: all leaf signatures known
    weblog_engagement,     # warm
    q10,                   # partially warm (shares orders/lineitem leaves
                           # only if predicates match -- they don't, so
                           # nation is its one fresh single-table overlap)
    weblog_premium_blink,  # partially warm (fresh pageviews predicates)
    q3,                    # warm again: plan-cache territory
)


def mixed_tables(scale_factor: float = 0.05, seed: int = 2014,
                 weblog_events: int = 4000) -> dict[str, Table]:
    """One catalog holding both domains (names never collide)."""
    tables = dict(generate_tpch(scale_factor, seed=seed).tables)
    tables.update(generate_weblogs(event_count=weblog_events, seed=seed))
    return tables


def mixed_udfs(workloads: list[Workload] | None = None) -> UdfRegistry:
    """Union of the batch's UDF registries (same-name UDFs are identical
    by construction -- each factory builds ``name@version``-stable UDFs)."""
    if workloads is None:
        workloads = [factory() for factory in MIXED_SEQUENCE]
    merged = UdfRegistry()
    for workload in workloads:
        for name in workload.udfs.names():
            merged.register(workload.udfs.get(name), replace=True)
    return merged


def mixed_batch() -> tuple[list[QueryRequest], UdfRegistry]:
    """The acceptance batch: 7 requests over 4 distinct queries."""
    workloads = [factory() for factory in MIXED_SEQUENCE]
    requests = [QueryRequest.from_workload(workload)
                for workload in workloads]
    return requests, mixed_udfs(workloads)


def mixed_tenant_batch(queries: int, tenants: int,
                       ) -> tuple[list[QueryRequest], UdfRegistry]:
    """Sustained-load batch: the mixed sequence cycled across tenants.

    Request ``i`` goes to tenant ``i % tenants`` (round-robin
    submission, so every tenant's queue interleaves) at priority
    ``tenant % 3 + 1``, giving the service scheduler's deficit-weighted
    dispatcher real weight differences to arbitrate. Like
    :func:`mixed_batch`, the result is a pure function of its
    arguments -- identical specs and signatures on every call -- which
    is what the result cache's identity keys rely on.
    """
    if queries < 1 or tenants < 1:
        raise ValueError("mixed_tenant_batch needs queries >= 1 and "
                         "tenants >= 1")
    base, udfs = mixed_batch()
    requests = []
    for position in range(queries):
        source = base[position % len(base)]
        tenant = position % tenants
        requests.append(QueryRequest(
            name=source.name, stages=list(source.stages),
            tenant=f"tenant-{tenant}", priority=tenant % 3 + 1,
        ))
    return requests, udfs
