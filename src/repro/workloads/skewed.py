"""Seeded skewed-join workloads: hot keys over a Zipfian tail.

Real click streams are not uniform: a handful of power users (or bot
accounts) dominate the fact table, which wrecks repartition joins -- the
reducers owning the hot keys straggle while the rest idle. This module
generates exactly that shape, deterministically:

* ``clicks`` -- the fact table; ``user_id`` draws from a small set of
  explicit *hot* keys (``hot_fraction`` of all rows) layered over a
  Zipf(``zipf_s``) long tail across the remaining users;
* ``users`` -- the build-side dimension, sized so it does **not** fit the
  broadcast or spill budgets (a plain hash build is infeasible and the
  optimizer must choose between repartition and the skew join);
* ``pages`` -- a small, genuinely broadcastable dimension for mixed plans.

Sampling is reproducible across platforms: one ``random.Random(seed)``
stream plus a precomputed Zipf CDF walked with ``bisect`` -- no float
accumulation order differences, no numpy dependency.
"""

from __future__ import annotations

import random
from bisect import bisect_left

from repro.data.schema import INT, STRING, Schema
from repro.data.table import Row, Table
from repro.jaql.functions import UdfRegistry
from repro.jaql.parser import SqlParser
from repro.workloads.queries import Workload

CLICK_SCHEMA = Schema.of(
    click_id=INT, user_id=INT, url=STRING, dwell_ms=INT,
)
USER_SCHEMA = Schema.of(
    user_id=INT, country=STRING, segment=STRING, score=INT,
)
PAGE_SCHEMA = Schema.of(
    url=STRING, category=STRING, weight=INT,
)

COUNTRIES = ["US", "DE", "JP", "BR", "IN", "FR", "GB", "CA"]
SEGMENTS = ["free", "trial", "pro", "enterprise"]
CATEGORIES = ["news", "sports", "video", "shop", "docs"]

#: Defaults tuned so that, at scale 1.0 under the default optimizer
#: config, the ``users`` build side overflows both the broadcast and the
#: hybrid-spill memory gates while its heavy-key slice stays tiny -- the
#: regime the skew join exists for.
DEFAULT_USER_COUNT = 6000
DEFAULT_CLICK_COUNT = 16000
DEFAULT_PAGE_COUNT = 40
DEFAULT_HOT_KEYS = 2
DEFAULT_HOT_FRACTION = 0.35
DEFAULT_ZIPF_S = 1.2
DEFAULT_SEED = 7


def zipf_cdf(count: int, s: float) -> list[float]:
    """Cumulative distribution of a Zipf(s) law over ranks ``1..count``."""
    if count <= 0:
        return []
    weights = [1.0 / (rank ** s) for rank in range(1, count + 1)]
    total = sum(weights)
    cdf: list[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    cdf[-1] = 1.0  # guard against float shortfall at the top
    return cdf


def generate_skewed(scale: float = 1.0, seed: int = DEFAULT_SEED,
                    user_count: int | None = None,
                    click_count: int | None = None,
                    page_count: int | None = None,
                    hot_keys: int = DEFAULT_HOT_KEYS,
                    hot_fraction: float = DEFAULT_HOT_FRACTION,
                    zipf_s: float = DEFAULT_ZIPF_S) -> dict[str, Table]:
    """Deterministic hot-key dataset: clicks x users x pages.

    ``hot_fraction`` of the clicks hit the first ``hot_keys`` user ids
    uniformly; the rest follow a Zipf(``zipf_s``) law over the remaining
    ids (shuffled, so hot keys are not simply the smallest values).
    """
    users_n = user_count if user_count is not None \
        else max(hot_keys + 1, int(DEFAULT_USER_COUNT * scale))
    clicks_n = click_count if click_count is not None \
        else max(1, int(DEFAULT_CLICK_COUNT * scale))
    pages_n = page_count if page_count is not None \
        else max(1, int(DEFAULT_PAGE_COUNT * min(scale, 1.0)))
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1]: {hot_fraction}")
    if hot_keys > users_n:
        raise ValueError(
            f"hot_keys={hot_keys} exceeds user_count={users_n}")
    rng = random.Random(seed)

    users: list[Row] = [
        {
            "user_id": key,
            "country": rng.choice(COUNTRIES),
            "segment": rng.choice(SEGMENTS),
            "score": rng.randint(0, 100),
        }
        for key in range(1, users_n + 1)
    ]
    pages: list[Row] = [
        {
            "url": f"/p/{key}",
            "category": rng.choice(CATEGORIES),
            "weight": rng.randint(1, 100),
        }
        for key in range(1, pages_n + 1)
    ]

    # Hot keys come from anywhere in the id space; the tail ranks are a
    # seeded permutation of the rest so rank-1 of the Zipf law is not
    # always user 1.
    ids = list(range(1, users_n + 1))
    rng.shuffle(ids)
    hot_ids = ids[:hot_keys]
    tail_ids = ids[hot_keys:]
    cdf = zipf_cdf(len(tail_ids), zipf_s)

    clicks: list[Row] = []
    for key in range(1, clicks_n + 1):
        if hot_ids and rng.random() < hot_fraction:
            user_id = hot_ids[rng.randrange(len(hot_ids))]
        elif tail_ids:
            user_id = tail_ids[bisect_left(cdf, rng.random())]
        else:
            user_id = hot_ids[rng.randrange(len(hot_ids))]
        clicks.append({
            "click_id": key,
            "user_id": user_id,
            "url": f"/p/{rng.randint(1, pages_n)}",
            "dwell_ms": rng.randint(10, 60_000),
        })

    return {
        "clicks": Table("clicks", CLICK_SCHEMA, clicks),
        "users": Table("users", USER_SCHEMA, users),
        "pages": Table("pages", PAGE_SCHEMA, pages),
    }


def skewed_join() -> Workload:
    """Clicks x users: the canonical hot-key join.

    The probe side (clicks) is dominated by a few user ids; the build
    side (users) is too large for any hash build. Under the default
    config the optimizer's only alternatives are the repartition join
    and the skew join.
    """
    udfs = UdfRegistry()
    sql = """
        SELECT u.country AS country, count(*) AS clicks,
               sum(c.dwell_ms) AS dwell
        FROM clicks c, users u
        WHERE c.user_id = u.user_id
        GROUP BY u.country
        ORDER BY dwell DESC
    """
    spec = SqlParser(udfs).parse(sql, "SkewJoin")
    return Workload(
        "SkewJoin", [(spec, None)], udfs,
        description="hot-key clicks x oversized users dimension "
                    "(Zipfian tail; exercises the skew join)",
        tables=("clicks", "users"),
    )


def skewed_funnel() -> Workload:
    """Clicks x users x pages: a mixed plan.

    ``pages`` is tiny (broadcast), ``users`` is oversized and hot-keyed
    (skew join), and the clicks-side predicate keeps the pilot runs'
    selectivity machinery in the loop.
    """
    udfs = UdfRegistry()
    sql = """
        SELECT p.category AS category, u.segment AS segment,
               count(*) AS clicks
        FROM clicks c, users u, pages p
        WHERE c.user_id = u.user_id
        AND c.url = p.url
        AND c.dwell_ms >= 500
        GROUP BY p.category, u.segment
        ORDER BY clicks DESC
    """
    spec = SqlParser(udfs).parse(sql, "SkewFunnel")
    return Workload(
        "SkewFunnel", [(spec, None)], udfs,
        description="3-way funnel mixing a broadcastable dimension with "
                    "the oversized hot-key users dimension",
        tables=("clicks", "users", "pages"),
    )


SKEWED_WORKLOADS = {
    "SkewJoin": skewed_join,
    "SkewFunnel": skewed_funnel,
}
