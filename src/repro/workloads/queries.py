"""The paper's workload: TPC-H queries with >= 4-way joins (Section 6.1).

From the 22 TPC-H queries the paper uses Q2, Q7, Q8, Q9, Q10 (Q5 is
excluded: cyclic join conditions). Two queries are modified exactly as in
the paper:

* **Q8'** adds (a) a filtering UDF on the result of the orders x customer
  join -- non-local, invisible to pilot runs, the showcase for
  re-optimization -- and (b) two *correlated* predicates on ``orders``
  (``o_orderzone``/``o_orderregion``; the zone functionally determines the
  region, found by CORDS in the paper, by :mod:`repro.workloads.cords`
  here);
* **Q9'** adds filtering UDFs on the dimension tables (part, partsupp,
  orders) so the dimensions fit in memory at low selectivities, plus a
  non-local UDF over orders x lineitem -- reproducing Figure 3 and the
  Figure 6 selectivity sweep.

Aggregate expressions are simplified to plain column aggregates (our
aggregate layer has no arithmetic), which does not affect join optimization
-- the paper's optimizer never sees the post-join stages either.

Queries are written in the SQL dialect and parsed, so the whole front end
(parser, rewriter, block extraction) is exercised on every experiment. The
FROM order below is the natural TPC-H order; the BESTSTATICJAQL baseline
enumerates all orders itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jaql.expr import QuerySpec
from repro.jaql.functions import (
    UdfRegistry,
    default_registry,
    make_pair_udf,
    make_selective_udf,
)
from repro.jaql.parser import SqlParser


@dataclass
class Workload:
    """A named query: one or more dependent blocks plus its UDF registry."""

    name: str
    #: (query spec, output table name); the final stage's output is None.
    stages: list[tuple[QuerySpec, str | None]]
    udfs: UdfRegistry
    description: str = ""
    #: tables read by the workload (for setup convenience).
    tables: tuple[str, ...] = ()

    @property
    def final_spec(self) -> QuerySpec:
        return self.stages[-1][0]


@dataclass
class _Builder:
    udfs: UdfRegistry = field(default_factory=UdfRegistry)

    def parse(self, sql: str, name: str) -> QuerySpec:
        return SqlParser(self.udfs).parse(sql, name)


# ---------------------------------------------------------------------------
# Q1: the restaurant example (Section 4.1) -- used in examples and tests.
# ---------------------------------------------------------------------------


def q1_restaurants() -> Workload:
    udfs = default_registry()
    builder = _Builder(udfs)
    sql = """
        SELECT rs.name
        FROM restaurant rs, review rv, tweet t
        WHERE rs.id = rv.rsid AND rv.tid = t.id
        AND rs.addr[0].zip = 94301 AND rs.addr[0].state = 'CA'
        AND sentanalysis(rv.text) = positive
        AND checkid(t.verified, rv.stars)
    """
    spec = builder.parse(sql, "Q1")
    return Workload(
        "Q1", [(spec, None)], udfs,
        description="restaurants with positive, identity-checked reviews "
                    "(correlated zip/state predicates + two UDFs)",
        tables=("restaurant", "review", "tweet"),
    )


# ---------------------------------------------------------------------------
# TPC-H Q2 (two blocks: min-supplycost subquery, then the 6-leaf outer join)
# ---------------------------------------------------------------------------


def q2() -> Workload:
    builder = _Builder(UdfRegistry())
    inner_sql = """
        SELECT ps.ps_partkey AS partkey, min(ps.ps_supplycost) AS min_cost
        FROM partsupp ps, supplier s, nation n, region r
        WHERE s.s_suppkey = ps.ps_suppkey
        AND s.s_nationkey = n.n_nationkey
        AND n.n_regionkey = r.r_regionkey
        AND r.r_name = 'EUROPE'
        GROUP BY ps.ps_partkey
    """
    outer_sql = """
        SELECT s.s_acctbal AS acctbal, s.s_name AS sname,
               n.n_name AS nname, p.p_partkey AS partkey
        FROM part p, supplier s, partsupp ps, nation n, region r,
             q2mincost mc
        WHERE p.p_partkey = ps.ps_partkey
        AND s.s_suppkey = ps.ps_suppkey
        AND p.p_size = 15 AND p.p_mfgr = 'Manufacturer#1'
        AND s.s_nationkey = n.n_nationkey
        AND n.n_regionkey = r.r_regionkey
        AND r.r_name = 'EUROPE'
        AND ps.ps_partkey = mc.partkey
        AND ps.ps_supplycost = mc.min_cost
        ORDER BY s.s_acctbal DESC LIMIT 100
    """
    inner = builder.parse(inner_sql, "Q2a")
    outer = builder.parse(outer_sql, "Q2")
    return Workload(
        "Q2", [(inner, "q2mincost"), (outer, None)], builder.udfs,
        description="TPC-H Q2: minimum-cost supplier (two dependent blocks)",
        tables=("part", "supplier", "partsupp", "nation", "region"),
    )


# ---------------------------------------------------------------------------
# TPC-H Q7 (6 leaves, nation self-join, disjunctive non-local predicate)
# ---------------------------------------------------------------------------


def q7() -> Workload:
    builder = _Builder(UdfRegistry())
    sql = """
        SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
               sum(l.l_extendedprice) AS revenue
        FROM supplier s, lineitem l, orders o, customer c,
             nation n1, nation n2
        WHERE s.s_suppkey = l.l_suppkey
        AND o.o_orderkey = l.l_orderkey
        AND c.c_custkey = o.o_custkey
        AND s.s_nationkey = n1.n_nationkey
        AND c.c_nationkey = n2.n_nationkey
        AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
             OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
        AND l.l_shipdate >= '1995-01-01' AND l.l_shipdate <= '1996-12-31'
        GROUP BY n1.n_name, n2.n_name
    """
    spec = builder.parse(sql, "Q7")
    return Workload(
        "Q7", [(spec, None)], builder.udfs,
        description="TPC-H Q7: volume shipping between two nations "
                    "(non-local disjunction over the two nation aliases)",
        tables=("supplier", "lineitem", "orders", "customer", "nation"),
    )


# ---------------------------------------------------------------------------
# TPC-H Q8' (8 leaves; non-local UDF on orders x customer; correlated
# predicates on orders)
# ---------------------------------------------------------------------------


def q8_prime(udf_selectivity: float = 0.5) -> Workload:
    udfs = UdfRegistry()
    udfs.register(make_pair_udf("q8check", udf_selectivity,
                                cost_seconds=0.0005, salt="q8"))
    builder = _Builder(udfs)
    sql = """
        SELECT o.o_orderdate AS orderdate,
               sum(l.l_extendedprice) AS volume
        FROM part p, supplier s, lineitem l, orders o, customer c,
             nation n1, nation n2, region r
        WHERE p.p_partkey = l.l_partkey
        AND s.s_suppkey = l.l_suppkey
        AND l.l_orderkey = o.o_orderkey
        AND o.o_custkey = c.c_custkey
        AND c.c_nationkey = n1.n_nationkey
        AND n1.n_regionkey = r.r_regionkey
        AND s.s_nationkey = n2.n_nationkey
        AND r.r_name = 'AMERICA'
        AND p.p_mfgr = 'Manufacturer#1'
        AND o.o_orderdate >= '1995-01-01' AND o.o_orderdate <= '1996-12-31'
        AND o.o_orderzone = 'Z03' AND o.o_orderregion = 'NORTH'
        AND q8check(o.o_orderkey, c.c_custkey)
        GROUP BY o.o_orderdate
    """
    spec = builder.parse(sql, "Q8'")
    return Workload(
        "Q8'", [(spec, None)], udfs,
        description="TPC-H Q8 + UDF over orders x customer + correlated "
                    "orders predicates (zone determines region)",
        tables=("part", "supplier", "lineitem", "orders", "customer",
                "nation", "region"),
    )


# ---------------------------------------------------------------------------
# TPC-H Q9' (6 leaves; filtering UDFs on the dimensions; non-local UDF on
# orders x lineitem)
# ---------------------------------------------------------------------------


def q9_prime(udf_selectivity: float = 0.005,
             pair_udf_selectivity: float = 0.5) -> Workload:
    """Q9' with dimension-filtering UDFs.

    The default selectivity keeps every filtered dimension within the
    broadcast memory budget at all three scale factors, matching the
    paper's setup ("we added various filtering UDFs on top of the dimension
    tables to make them fit in memory"); the Figure 6 sweep varies it.
    """
    udfs = UdfRegistry()
    udfs.register(make_selective_udf("q9part", udf_selectivity,
                                     cost_seconds=0.0005, salt="p"))
    udfs.register(make_selective_udf("q9partsupp", udf_selectivity,
                                     cost_seconds=0.0005, salt="ps"))
    udfs.register(make_selective_udf("q9orders", udf_selectivity,
                                     cost_seconds=0.0005, salt="o"))
    udfs.register(make_pair_udf("q9check", pair_udf_selectivity,
                                cost_seconds=0.0005, salt="ol"))
    builder = _Builder(udfs)
    sql = """
        SELECT n.n_name AS nation, sum(l.l_extendedprice) AS profit
        FROM part p, supplier s, lineitem l, partsupp ps, orders o,
             nation n
        WHERE p.p_partkey = l.l_partkey
        AND s.s_suppkey = l.l_suppkey
        AND ps.ps_partkey = l.l_partkey
        AND ps.ps_suppkey = l.l_suppkey
        AND o.o_orderkey = l.l_orderkey
        AND s.s_nationkey = n.n_nationkey
        AND q9part(p.p_partkey)
        AND q9partsupp(ps.ps_partkey)
        AND q9orders(o.o_orderkey)
        AND q9check(o.o_orderpriority, l.l_shipmode)
        GROUP BY n.n_name
    """
    spec = builder.parse(sql, "Q9'")
    return Workload(
        "Q9'", [(spec, None)], udfs,
        description="TPC-H Q9 star join + dimension-filtering UDFs "
                    "(Figures 3 and 6)",
        tables=("part", "supplier", "lineitem", "partsupp", "orders",
                "nation"),
    )


# ---------------------------------------------------------------------------
# TPC-H Q10 (4 leaves; the left-deep-friendly query)
# ---------------------------------------------------------------------------


def q10() -> Workload:
    builder = _Builder(UdfRegistry())
    sql = """
        SELECT c.c_custkey AS custkey, c.c_name AS cname,
               n.n_name AS nname, sum(l.l_extendedprice) AS revenue
        FROM customer c, orders o, lineitem l, nation n
        WHERE c.c_custkey = o.o_custkey
        AND l.l_orderkey = o.o_orderkey
        AND o.o_orderdate >= '1993-01-01' AND o.o_orderdate <= '1993-12-31'
        AND l.l_returnflag = 'R'
        AND c.c_nationkey = n.n_nationkey
        GROUP BY c.c_custkey, c.c_name, n.n_name
        ORDER BY revenue DESC LIMIT 20
    """
    spec = builder.parse(sql, "Q10")
    return Workload(
        "Q10", [(spec, None)], builder.udfs,
        description="TPC-H Q10: returned-item reporting",
        tables=("customer", "orders", "lineitem", "nation"),
    )


#: Factories for the evaluation queries, keyed as the paper names them.
TPCH_WORKLOADS = {
    "Q2": q2,
    "Q7": q7,
    "Q8'": q8_prime,
    "Q9'": q9_prime,
    "Q10": q10,
}


# ---------------------------------------------------------------------------
# Extra workloads outside the paper's evaluation set
# ---------------------------------------------------------------------------


def q3() -> Workload:
    """TPC-H Q3 (3-way join) -- not in the paper's set (fewer than four
    relations), provided as an additional runnable workload."""
    builder = _Builder(UdfRegistry())
    sql = """
        SELECT l.l_orderkey AS orderkey, o.o_orderdate AS orderdate,
               sum(l.l_extendedprice) AS revenue
        FROM customer c, orders o, lineitem l
        WHERE c.c_mktsegment = 'BUILDING'
        AND c.c_custkey = o.o_custkey
        AND l.l_orderkey = o.o_orderkey
        AND o.o_orderdate <= '1995-03-15'
        AND l.l_shipdate >= '1995-03-15'
        GROUP BY l.l_orderkey, o.o_orderdate
        ORDER BY revenue DESC LIMIT 10
    """
    spec = builder.parse(sql, "Q3")
    return Workload(
        "Q3", [(spec, None)], builder.udfs,
        description="TPC-H Q3: shipping priority",
        tables=("customer", "orders", "lineitem"),
    )


def q5_cyclic() -> Workload:
    """TPC-H Q5's cyclic join block.

    The paper *excludes* Q5 "because it contains cyclic join conditions
    that are not currently supported by our optimizer" (Section 6.1); the
    cycle is customer -> orders -> lineitem -> supplier -> customer (via
    ``c_nationkey = s_nationkey``). Executing this workload raises
    :class:`~repro.errors.UnsupportedQueryError`, reproducing that
    limitation faithfully.
    """
    builder = _Builder(UdfRegistry())
    sql = """
        SELECT n.n_name AS nation, sum(l.l_extendedprice) AS revenue
        FROM customer c, orders o, lineitem l, supplier s, nation n,
             region r
        WHERE c.c_custkey = o.o_custkey
        AND l.l_orderkey = o.o_orderkey
        AND l.l_suppkey = s.s_suppkey
        AND c.c_nationkey = s.s_nationkey
        AND s.s_nationkey = n.n_nationkey
        AND n.n_regionkey = r.r_regionkey
        AND r.r_name = 'ASIA'
        GROUP BY n.n_name
    """
    spec = builder.parse(sql, "Q5")
    return Workload(
        "Q5", [(spec, None)], builder.udfs,
        description="TPC-H Q5 (cyclic join graph; rejected like the paper)",
        tables=("customer", "orders", "lineitem", "supplier", "nation",
                "region"),
    )
