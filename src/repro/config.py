"""Central configuration for the DYNO reproduction.

One frozen dataclass gathers every knob: the simulated cluster topology
(matching the paper's 15-node deployment, Section 6.1), the analytic time
model constants, the optimizer cost constants from Section 5.2, and the
pilot-run parameters from Section 4.

The defaults reproduce the paper's setup:

* 15 nodes x (10 map + 6 reduce) slots = 140 map / 84 reduce usable slots
  (the paper reports totals of 140 and 84; one node hosts the jobtracker).
* MapReduce job startup cost of ~15 seconds (Section 4.2).
* KMV synopsis size 1024 (worst-case distinct-value error about 6%,
  Section 4.3); the pilot stop count ``k`` is scaled with the downscaled
  data (DESIGN.md Section 5).
* Cost-model ordering ``crep >> cprobe > cbuild > cout`` (Section 5.2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.faults import FaultPlan


@dataclass(frozen=True)
class ClusterConfig:
    """Simulated cluster topology and task-level time model.

    Byte rates are deliberately scaled to the downscaled datasets (DESIGN.md
    Section 2): all reported results are relative, as in the paper.
    """

    nodes: int = 15
    map_slots_per_node: int = 10
    reduce_slots_per_node: int = 6
    #: One node is reserved for the jobtracker, as in the paper's totals.
    worker_nodes: int = 14

    #: DFS block size; tables split into blocks of this many bytes.
    #: (Scaled with the datasets: the paper uses 128 MB blocks on 100 GB+
    #: tables; we keep the same blocks-per-table ratios.)
    block_size_bytes: int = 16 * 1024
    replication: int = 1

    #: --- analytic time model (seconds / bytes-per-second) ---
    #: Rates are scaled to the downscaled datasets so that the *ratios*
    #: match the paper's cluster: one split scan is commensurate with task
    #: startup, a full fact-table scan takes a few waves at large scale
    #: factors, and the 15 s job startup matters exactly as much as it did
    #: on Hadoop 1.1.1 (Sections 4.2, 6.1).
    job_startup_seconds: float = 15.0
    task_startup_seconds: float = 0.5
    #: sequential read from local disk
    read_bytes_per_second: float = 1024.0
    #: write of job output to DFS
    write_bytes_per_second: float = 768.0
    #: shuffle (network + sort/merge) of map output to reducers; the
    #: dominant cost of a repartition join (network hop + external sort)
    shuffle_bytes_per_second: float = 512.0
    #: re-read of a broadcast build file by the tasks of one node; faster
    #: than a cold split read because the datanode's page cache serves
    #: every task after the first
    broadcast_read_bytes_per_second: float = 4096.0
    #: per-record CPU cost of plain map-side processing
    cpu_seconds_per_record: float = 0.00002
    #: extra per-probe cost of the in-memory hash join
    probe_seconds_per_record: float = 0.00001
    #: per-record cost of inserting into a broadcast hash table
    build_seconds_per_record: float = 0.00002
    #: per-output-record cost of online statistics collection (Section 5.4;
    #: shows up as the 0.1%-2.8% overhead of Figure 4)
    stats_seconds_per_record: float = 0.001

    #: memory available to a task for broadcast-join build sides (bytes).
    task_memory_bytes: int = 96 * 1024
    #: degrade-in-place margin: a build side overflowing
    #: ``task_memory_bytes`` by up to this factor spills partitions to the
    #: simulated DFS (hybrid hash join) instead of aborting the job;
    #: beyond it the overflow is a pathological misestimate and still
    #: raises :class:`repro.errors.BroadcastBuildOverflowError` (which the
    #: dynamic executor turns into a ban-and-replan).
    spill_overflow_factor: float = 4.0
    #: cluster-wide memory pool shared by concurrently scheduled jobs
    #: (bytes). 0 derives the pool from the topology:
    #: ``total_map_slots * task_memory_bytes`` -- every map slot can hold
    #: one task-sized working set, as on the real cluster.
    cluster_memory_bytes: int = 0

    #: slot scheduling policy: "fifo" (Hadoop 1.x default, used by the
    #: paper) or "fair" (Section 6.3's future-work experiment).
    scheduler_policy: str = "fifo"

    #: probability that a task attempt fails and is re-executed (Hadoop's
    #: retry-on-failure; the checkpointing the paper leans on in Section 1
    #: makes retries cheap). Deterministic per job. 0.0 disables.
    task_failure_rate: float = 0.0
    #: attempt budget per task (Hadoop's mapred.*.max.attempts, default 4).
    #: A task that fails this many times kills its job with
    #: :class:`repro.errors.TaskRetriesExhaustedError`.
    max_task_attempts: int = 4
    #: how often the runtime retries a whole job that died from a
    #: *transient* injected fault before giving up.
    max_job_attempts: int = 4
    #: exponential backoff between whole-job retries (simulated seconds,
    #: charged as extra startup time in the slot schedule):
    #: ``min(base * 2**(attempt-1), cap)``.
    job_retry_backoff_seconds: float = 4.0
    job_retry_backoff_cap_seconds: float = 64.0
    #: launch speculative backup copies of straggling tasks (Hadoop's
    #: speculative execution). Off by default, matching the paper's
    #: Hadoop 1.1.1 setup; the fault-injection tests turn it on.
    speculative_execution: bool = False
    #: a task is a straggler candidate once its duration exceeds this
    #: multiple of the job's median task duration.
    speculative_slowdown_threshold: float = 3.0

    @property
    def total_map_slots(self) -> int:
        return self.worker_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return self.worker_nodes * self.reduce_slots_per_node

    @property
    def effective_cluster_memory_bytes(self) -> int:
        """The scheduler's memory pool: explicit, or slots x task memory."""
        if self.cluster_memory_bytes > 0:
            return self.cluster_memory_bytes
        return self.total_map_slots * self.task_memory_bytes


@dataclass(frozen=True)
class OptimizerConfig:
    """Cost constants of Section 5.2 and search controls.

    The paper requires ``crep >> cprobe > cbuild > cout`` so broadcast joins
    win whenever the build side fits in memory.
    """

    crep: float = 10.0
    cprobe: float = 1.0
    cbuild: float = 0.5
    cout: float = 0.25
    #: fixed cost per MapReduce job (startup + scheduling). The paper's
    #: formulas omit it -- negligible at cluster scale -- but at simulation
    #: scale it breaks ties between one chained job and a cascade of tiny
    #: jobs exactly like the real ~15 s job startup does (Section 4.2).
    cjob: float = 20000.0
    #: memory budget Mmax used by the broadcast and chain rules (bytes).
    max_broadcast_bytes: int = 96 * 1024
    #: headroom applied to estimated build sizes before declaring them
    #: broadcast-safe (guards against mild underestimation; a broadcast
    #: build that overflows at runtime aborts the query, Section 2.2.1).
    #: DYNO can afford a small margin because its leaf estimates come from
    #: pilot runs; conservative optimizers use a much larger one
    #: (see repro.core.baselines.RELOPT_SAFETY_FACTOR).
    broadcast_safety_factor: float = 1.3
    #: per-byte cost of spilling one partitioned byte to disk and reading
    #: it back (hybrid hash join). Sits between ``cprobe`` and ``crep`` so
    #: a marginally oversized build degrades to a spilling hash join
    #: rather than a full repartition, but spilling *everything* never
    #: beats the repartition join.
    cspill: float = 4.0
    #: how far past ``Mmax`` a build side may be (estimated, after the
    #: safety factor) for the spillable hybrid hash join to stay
    #: applicable. Matches the runtime's degrade-in-place margin
    #: (:attr:`ClusterConfig.spill_overflow_factor`).
    spill_margin_factor: float = 4.0
    #: consider the skew-aware join (heavy keys broadcast map-side, tail
    #: repartitioned). It can only ever beat a repartition join -- a plain
    #: broadcast always costs less where it applies -- so disabling it
    #: exactly restores the pre-skew plan space.
    enable_skew_rule: bool = True
    #: a join-key value is a heavy hitter when its sampled frequency is at
    #: least this fraction of the probe side. 0.1 sits well above every
    #: TPC-H foreign-key frequency at our test scales (those are uniform)
    #: while catching any genuinely hot key.
    skew_key_fraction: float = 0.1
    #: minimum combined probe fraction of the selected heavy keys for the
    #: skew join to be worth a broadcast side channel at all.
    skew_min_probe_fraction: float = 0.2
    #: at most this many heavy keys ride the side channel (also bounded by
    #: the statistics layer's HEAVY_HITTER_K).
    skew_max_keys: int = 8
    #: abandon plans whose cost exceeds the best found so far (B&B pruning).
    enable_pruning: bool = True
    #: apply the broadcast-chain rule (Section 5.2). Disabling it makes
    #: every broadcast join its own map-only job, as stock Jaql would
    #: without the chain rewrite -- used by the ablation benchmark.
    enable_chain_rule: bool = True


@dataclass(frozen=True)
class PilotConfig:
    """Pilot-run parameters (Section 4)."""

    #: records to collect per relation before stopping the pilot job.
    #: (The paper uses k=1024 on tables ~1000x larger; k scales with the
    #: downscaled data so a pilot run touches the same *fraction* of a
    #: selective relation as in the paper. The first wave of sampled
    #: splits always completes, so typical sample sizes stay much larger
    #: than k.)
    k_records: int = 64
    #: KMV synopsis size (Section 4.3; k=1024 -> ~6% DV error bound).
    kmv_size: int = 1024
    #: fraction of a relation scanned beyond which a nearly-complete pilot
    #: job is allowed to run to completion so its output can be reused
    #: (Section 4.1, "Optimization for selective predicates").
    reuse_completion_threshold: float = 0.8
    #: random seed for split sampling.
    seed: int = 42


@dataclass(frozen=True)
class ExecutorConfig:
    """Data-path executor knobs (the *driver's* wall-clock, not simulated
    time).

    When ``parallel_jobs`` is on, :class:`repro.cluster.runtime.ClusterRuntime`
    runs the data pass of dependency-free jobs of a batch concurrently on a
    ``concurrent.futures`` pool and finalizes (DFS writes, statistics
    merges) on the driver thread in deterministic batch order -- results
    are byte-identical to serial execution. Simulated makespans are
    unaffected either way: they come from the analytic cost model and the
    slot scheduler, never from the driver's wall-clock.
    """

    #: run independent jobs of a batch concurrently.
    parallel_jobs: bool = False
    #: "thread" or "process". Process pools require picklable jobs; the
    #: executor degrades to threads when a job cannot be pickled (compiled
    #: mapper closures generally cannot).
    pool: str = "thread"
    #: worker count; None picks a small multiple of the CPU count.
    max_workers: int | None = None
    #: dependency levels narrower than this run inline (pool dispatch
    #: overhead would exceed the win on one or two jobs).
    min_parallel_jobs: int = 2

    def __post_init__(self) -> None:
        if self.pool not in ("thread", "process"):
            raise ValueError(f"unknown executor pool: {self.pool!r}")
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.min_parallel_jobs < 2:
            raise ValueError("min_parallel_jobs must be >= 2")


@dataclass(frozen=True)
class DynoConfig:
    """Top-level configuration bundle."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    pilot: PilotConfig = field(default_factory=PilotConfig)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    #: execution backend: "jaql" (build loaded per task) or "hive"
    #: (DistributedCache: build loaded once per node). Section 6.6.
    backend: str = "jaql"
    #: re-optimize after every executed job (the paper's default policy).
    reoptimize_every_job: bool = True
    #: threshold on |observed - estimated| / estimated cardinality beyond
    #: which re-optimization triggers when the every-job policy is off.
    reoptimization_threshold: float = 0.5
    #: mid-job re-optimization trigger: after any job of a batch lands, a
    #: q-error (max of rows/bytes, >= 1.0) at or above this threshold
    #: aborts the rest of the compiled graph and re-optimizes immediately
    #: with the fresh statistics -- without waiting for the per-iteration
    #: policy above. ``inf`` (the default) disables the trigger and
    #: reproduces the pre-trigger execution exactly.
    midjob_qerror_threshold: float = float("inf")
    #: armed fault schedule, or None (the default: no fault machinery on
    #: the hot path at all). See :class:`repro.cluster.faults.FaultPlan`.
    fault_plan: "FaultPlan | None" = None
    #: how many times the dynamic executor may replan around a permanent
    #: job failure (e.g. a doomed broadcast join) before re-raising.
    max_recovery_replans: int = 8
    #: columnar batch data path: compiled jobs carry vectorized batch
    #: mappers/reducers (scan+filter, hash-join probe, group-by, shuffle
    #: partitioning run batch-at-a-time over column lists). Results and
    #: byte accounting are bit-identical to the row engine -- the
    #: differential oracle enforces it -- only driver wall-clock changes.
    columnar: bool = False
    #: column-array backend for the columnar path: "auto" uses numpy for
    #: selection masks when importable, "python" forces the pure-Python
    #: column lists, "numpy" requires the accelerator.
    columnar_backend: str = "auto"

    def with_backend(self, backend: str) -> "DynoConfig":
        if backend not in ("jaql", "hive"):
            raise ValueError(f"unknown backend: {backend!r}")
        return replace(self, backend=backend)

    def with_parallel_execution(self, enabled: bool = True,
                                pool: str | None = None,
                                max_workers: int | None = None,
                                ) -> "DynoConfig":
        """Config with the parallel data-path executor toggled."""
        executor = replace(
            self.executor,
            parallel_jobs=enabled,
            pool=pool if pool is not None else self.executor.pool,
            max_workers=(max_workers if max_workers is not None
                         else self.executor.max_workers),
        )
        return replace(self, executor=executor)

    def with_memory(self, task_memory_bytes: int | None = None,
                    cluster_memory_bytes: int | None = None,
                    ) -> "DynoConfig":
        """Config with the memory budgets changed coherently.

        ``task_memory_bytes`` is the paper's ``Mmax``: it gates both the
        runtime's build-side check and the optimizer's broadcast/chain
        rules, so the two must move together -- this helper is the only
        supported way to change either.
        """
        cluster = self.cluster
        optimizer = self.optimizer
        if task_memory_bytes is not None:
            if task_memory_bytes <= 0:
                raise ValueError("task_memory_bytes must be positive")
            cluster = replace(cluster, task_memory_bytes=task_memory_bytes)
            optimizer = replace(optimizer,
                                max_broadcast_bytes=task_memory_bytes)
        if cluster_memory_bytes is not None:
            if cluster_memory_bytes < 0:
                raise ValueError("cluster_memory_bytes must be >= 0")
            cluster = replace(cluster,
                              cluster_memory_bytes=cluster_memory_bytes)
        return replace(self, cluster=cluster, optimizer=optimizer)

    def with_columnar(self, enabled: bool = True,
                      backend: str | None = None) -> "DynoConfig":
        """Config with the columnar batch data path toggled.

        ``backend`` optionally pins the column-array backend ("auto",
        "python", or "numpy"); the default keeps the current setting.
        """
        config = replace(self, columnar=enabled)
        if backend is not None:
            if backend not in ("auto", "python", "numpy"):
                raise ValueError(
                    f"unknown columnar backend: {backend!r}")
            config = replace(config, columnar_backend=backend)
        return config

    def with_midjob_trigger(self, qerror_threshold: float) -> "DynoConfig":
        """Config with the mid-job re-optimization trigger armed.

        ``qerror_threshold`` is a q-error (>= 1.0); ``float("inf")``
        disarms the trigger (the default behaviour).
        """
        if qerror_threshold < 1.0:
            raise ValueError("midjob q-error threshold must be >= 1.0 "
                             "(1.0 means a perfect estimate)")
        return replace(self, midjob_qerror_threshold=qerror_threshold)

    def with_fault_plan(self, plan: "FaultPlan | None") -> "DynoConfig":
        """Config with a fault schedule armed (or disarmed with None)."""
        if plan is not None:
            from repro.cluster.faults import FaultPlan
            if not isinstance(plan, FaultPlan):
                raise ValueError(
                    f"fault_plan must be a FaultPlan, got "
                    f"{type(plan).__name__}")
        return replace(self, fault_plan=plan)


# DYNO_COLUMNAR=1 flips the default config to the columnar data path so an
# unmodified test suite exercises it end to end (the CI columnar leg).
DEFAULT_CONFIG = DynoConfig(
    columnar=os.environ.get("DYNO_COLUMNAR", "") == "1"
)
