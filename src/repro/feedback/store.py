"""The workload feedback store: audits in, better optimizations out.

Every executed DYNOPT job already yields an estimate audit (estimated vs
actual rows/bytes, the q-error the paper treats as the core feedback
signal). This store closes the loop on three channels:

* **correction factors** -- per group key (see :mod:`repro.feedback.keys`)
  a multiplicative correction in log space, updated by
  ``log2_correction += alpha * log2(actual / estimated)``. The estimate
  fed back is the *already corrected* one, so the update chases the
  residual error and converges toward q-error 1.0 under a stationary
  bias. Applied factors are clamped and **quantized** in log2 space so
  the plan-cache salt (below) stabilizes once learning converges instead
  of thrashing the cache on every epsilon;
* **pilot boosts** -- a key whose rows q-error stays above
  :data:`PILOT_QERROR_THRESHOLD` for :data:`PILOT_ESCALATE_AFTER`
  consecutive audits *despite corrections* escalates its contributing
  base-leaf signatures: their next pilot runs with a boosted ``k`` and is
  forced even though the metastore already has the signature. Re-piloting
  (rather than invalidating the metastore) keeps the old statistics live
  for concurrent drivers until the fresh ones replace them;
* **plan-choice regret** -- per canonical block key, each optimizer
  choice is compared with the best (cheapest) cost ever recorded for that
  key. ``regret = chosen_cost / best_known - 1`` (0 = picked the best
  known plan; best-known is the running minimum, so early choices are not
  charged retroactively). The leaderboard surfaces the blocks that keep
  paying for bad plans.

Corrected estimates must not resurrect plans cached under the uncorrected
ones: :meth:`correction_token` hashes the quantized corrections relevant
to a block, and the DYNOPT executor salts the plan cache's statistics
fingerprint with it.

Thread-safe like the metastore (one service-wide store shared by all
driver threads) and persisted with the same atomic tmp-then-replace
discipline.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StatisticsError
from repro.obs.metrics import MetricsRegistry, NULL_METRICS, q_error

#: EWMA step on the log-space residual; 0.5 halves the error per audit.
LEARNING_RATE = 0.5
#: Applied corrections stay within 2**±MAX_LOG2_CORRECTION (x64 either way).
MAX_LOG2_CORRECTION = 6.0
#: One audit may move the correction by at most this much (outlier guard).
MAX_LOG2_UPDATE = 8.0
#: Applied factors snap to multiples of this in log2 space (~19% steps),
#: so the plan-cache token goes quiet once learning converges.
QUANT_STEP_LOG2 = 0.25

#: Rows q-error at/above which an audit counts as a persistent miss.
PILOT_QERROR_THRESHOLD = 4.0
#: Consecutive misses (post-correction) before pilots escalate.
PILOT_ESCALATE_AFTER = 3
#: Each escalation doubles the pilot's k_records, up to the cap.
PILOT_BOOST_FACTOR = 2.0
PILOT_BOOST_MAX = 16.0


def _quantize(log2_value: float) -> float:
    """Snap a log2 correction to the grid, clamped to the legal range."""
    clamped = max(-MAX_LOG2_CORRECTION, min(MAX_LOG2_CORRECTION, log2_value))
    return round(clamped / QUANT_STEP_LOG2) * QUANT_STEP_LOG2


@dataclass
class _Correction:
    """Learned state for one group key."""

    samples: int = 0
    log2_rows: float = 0.0
    log2_bytes: float = 0.0
    last_qerror_rows: float = 1.0
    last_qerror_bytes: float = 1.0
    consecutive_high: int = 0
    #: sorted (alias, identity) pairs of the group the key describes.
    identity: tuple = ()

    @property
    def contributing(self) -> tuple[str, ...]:
        """Base-leaf signatures whose statistics fed this estimate."""
        return tuple(sorted({
            identity for _, identity in self.identity
            if identity.startswith("table:")
        }))

    def factors(self) -> tuple[float, float]:
        return (2.0 ** _quantize(self.log2_rows),
                2.0 ** _quantize(self.log2_bytes))

    def to_dict(self) -> dict:
        return {
            "samples": self.samples,
            "log2_rows": self.log2_rows,
            "log2_bytes": self.log2_bytes,
            "last_qerror_rows": self.last_qerror_rows,
            "last_qerror_bytes": self.last_qerror_bytes,
            "consecutive_high": self.consecutive_high,
            "identity": [list(pair) for pair in self.identity],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "_Correction":
        return cls(
            samples=int(payload.get("samples", 0)),
            log2_rows=float(payload.get("log2_rows", 0.0)),
            log2_bytes=float(payload.get("log2_bytes", 0.0)),
            last_qerror_rows=float(payload.get("last_qerror_rows", 1.0)),
            last_qerror_bytes=float(payload.get("last_qerror_bytes", 1.0)),
            consecutive_high=int(payload.get("consecutive_high", 0)),
            identity=tuple(
                (str(alias), str(identity))
                for alias, identity in payload.get("identity", [])
            ),
        )


@dataclass
class _BlockRegret:
    """Regret bookkeeping for one canonical block key."""

    choices: int = 0
    best_cost: float = math.inf
    best_plan: str = ""
    total_regret: float = 0.0
    max_regret: float = 0.0
    worst_plan: str = ""

    @property
    def mean_regret(self) -> float:
        return self.total_regret / self.choices if self.choices else 0.0

    def to_dict(self) -> dict:
        return {
            "choices": self.choices,
            "best_cost": self.best_cost,
            "best_plan": self.best_plan,
            "total_regret": self.total_regret,
            "max_regret": self.max_regret,
            "worst_plan": self.worst_plan,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "_BlockRegret":
        return cls(
            choices=int(payload.get("choices", 0)),
            best_cost=float(payload.get("best_cost", math.inf)),
            best_plan=str(payload.get("best_plan", "")),
            total_regret=float(payload.get("total_regret", 0.0)),
            max_regret=float(payload.get("max_regret", 0.0)),
            worst_plan=str(payload.get("worst_plan", "")),
        )


@dataclass
class _PilotTuning:
    """Escalation state for one base-leaf statistics signature."""

    boost: float = 1.0
    repilot_pending: bool = False
    escalations: int = 0

    def to_dict(self) -> dict:
        return {"boost": self.boost,
                "repilot_pending": self.repilot_pending,
                "escalations": self.escalations}

    @classmethod
    def from_dict(cls, payload: dict) -> "_PilotTuning":
        return cls(boost=float(payload.get("boost", 1.0)),
                   repilot_pending=bool(payload.get("repilot_pending",
                                                    False)),
                   escalations=int(payload.get("escalations", 0)))


class FeedbackStore:
    """Thread-safe per-block-key feedback over estimate audits."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._corrections: dict[str, _Correction] = {}
        self._blocks: dict[str, _BlockRegret] = {}
        self._pilots: dict[str, _PilotTuning] = {}
        self.metrics: MetricsRegistry = NULL_METRICS

    def bind_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Adopt a real registry; never downgrade to the null one."""
        if metrics is not None and metrics.enabled:
            self.metrics = metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._corrections)

    # -- ingestion ------------------------------------------------------------

    def ingest(self, key: str, identity: tuple,
               estimated_rows: float, actual_rows: float,
               estimated_bytes: float, actual_bytes: float,
    ) -> tuple[str, ...]:
        """Fold one estimate audit in; returns signatures escalated now.

        ``estimated_rows``/``estimated_bytes`` are the (already corrected)
        estimates the executed job carried, so the log-space update chases
        the residual error and converges.
        """
        rows_q = q_error(estimated_rows, actual_rows)
        bytes_q = q_error(estimated_bytes, actual_bytes)
        escalated: tuple[str, ...] = ()
        with self._lock:
            correction = self._corrections.get(key)
            if correction is None:
                correction = _Correction(identity=tuple(identity))
                self._corrections[key] = correction
            correction.samples += 1
            correction.log2_rows = self._step(
                correction.log2_rows, estimated_rows, actual_rows)
            correction.log2_bytes = self._step(
                correction.log2_bytes, estimated_bytes, actual_bytes)
            correction.last_qerror_rows = rows_q
            correction.last_qerror_bytes = bytes_q
            if rows_q >= PILOT_QERROR_THRESHOLD:
                correction.consecutive_high += 1
                if correction.consecutive_high >= PILOT_ESCALATE_AFTER:
                    correction.consecutive_high = 0
                    escalated = self._escalate(correction.contributing)
            else:
                correction.consecutive_high = 0
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("feedback.ingested")
            if escalated:
                metrics.inc("feedback.pilot_boosts", len(escalated))
        return escalated

    @staticmethod
    def _step(log2_correction: float, estimated: float,
              actual: float) -> float:
        residual = math.log2(max(actual, 1.0) / max(estimated, 1.0))
        residual = max(-MAX_LOG2_UPDATE, min(MAX_LOG2_UPDATE, residual))
        updated = log2_correction + LEARNING_RATE * residual
        return max(-MAX_LOG2_CORRECTION,
                   min(MAX_LOG2_CORRECTION, updated))

    def _escalate(self, signatures: tuple[str, ...]) -> tuple[str, ...]:
        """Boost + force-repilot the contributing base-leaf signatures."""
        escalated = []
        for signature in signatures:
            tuning = self._pilots.setdefault(signature, _PilotTuning())
            if tuning.boost >= PILOT_BOOST_MAX and tuning.repilot_pending:
                continue  # already maxed out and queued
            tuning.boost = min(tuning.boost * PILOT_BOOST_FACTOR,
                               PILOT_BOOST_MAX)
            tuning.repilot_pending = True
            tuning.escalations += 1
            escalated.append(signature)
        return tuple(escalated)

    # -- correction application ----------------------------------------------

    def correction(self, key: str) -> tuple[float, float]:
        """(rows factor, bytes factor) to multiply into an estimate."""
        with self._lock:
            correction = self._corrections.get(key)
            if correction is None or not correction.samples:
                return (1.0, 1.0)
            return correction.factors()

    def correction_token(self, alias_identity: dict[str, str]) -> str:
        """Salt for the plan-cache fingerprint of a block.

        Hashes every quantized, non-identity correction whose group lies
        inside the block's (alias, identity) mapping -- exactly the
        corrections that can change this block's estimates. Quantization
        keeps the token stable once learning converges; an empty token
        means "no corrections apply", matching feedback-off behaviour.
        """
        items = set(alias_identity.items())
        parts = []
        with self._lock:
            for key, correction in self._corrections.items():
                if not correction.samples:
                    continue
                if not set(correction.identity) <= items:
                    continue
                rows_factor, bytes_factor = correction.factors()
                if rows_factor == 1.0 and bytes_factor == 1.0:
                    continue
                parts.append(f"{key}:{rows_factor:.6g}:{bytes_factor:.6g}")
        if not parts:
            return ""
        digest = hashlib.sha256("|".join(sorted(parts)).encode("utf-8"))
        return digest.hexdigest()[:12]

    # -- pilot auto-tuning ----------------------------------------------------

    def pilot_boost(self, signature: str) -> float:
        with self._lock:
            tuning = self._pilots.get(signature)
            return tuning.boost if tuning is not None else 1.0

    def should_repilot(self, signature: str) -> bool:
        """True when this signature's next pilot must run even on a hit."""
        with self._lock:
            tuning = self._pilots.get(signature)
            return tuning is not None and tuning.repilot_pending

    def repilot_done(self, signature: str) -> None:
        with self._lock:
            tuning = self._pilots.get(signature)
            if tuning is None or not tuning.repilot_pending:
                return
            tuning.repilot_pending = False
        if self.metrics.enabled:
            self.metrics.inc("feedback.repilots")

    # -- plan-choice regret ----------------------------------------------------

    def record_choice(self, block_key: str, plan_signature: str,
                      cost: float) -> float:
        """Record one optimizer decision; returns its regret (>= 0)."""
        with self._lock:
            record = self._blocks.setdefault(block_key, _BlockRegret())
            record.choices += 1
            if cost < record.best_cost:
                record.best_cost = cost
                record.best_plan = plan_signature
            if record.best_cost > 0:
                regret = cost / record.best_cost - 1.0
            else:
                regret = 0.0
            record.total_regret += regret
            if regret >= record.max_regret:
                record.max_regret = regret
                record.worst_plan = plan_signature
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("feedback.choices")
            metrics.observe("feedback.regret", regret)
        return regret

    def regret_leaderboard(self, top: int = 10) -> list[dict]:
        """Blocks ranked by mean regret (worst offenders first)."""
        with self._lock:
            records = [(key, record) for key, record in self._blocks.items()
                       if record.choices]
        records.sort(key=lambda item: (-item[1].mean_regret,
                                       -item[1].max_regret, item[0]))
        return [
            {
                "block": key,
                "choices": record.choices,
                "mean_regret": record.mean_regret,
                "max_regret": record.max_regret,
                "best_cost": record.best_cost,
                "best_plan": record.best_plan,
                "worst_plan": record.worst_plan,
            }
            for key, record in records[:top]
        ]

    # -- reporting -------------------------------------------------------------

    def summary(self) -> dict:
        with self._lock:
            corrections = len(self._corrections)
            samples = sum(c.samples for c in self._corrections.values())
            active = sum(1 for c in self._corrections.values()
                         if c.factors() != (1.0, 1.0))
            boosted = {signature: tuning.boost
                       for signature, tuning in self._pilots.items()
                       if tuning.boost > 1.0}
            pending = sorted(signature
                             for signature, tuning in self._pilots.items()
                             if tuning.repilot_pending)
            blocks = len(self._blocks)
        return {
            "keys": corrections,
            "samples": samples,
            "active_corrections": active,
            "pilot_boosts": boosted,
            "repilots_pending": pending,
            "blocks_tracked": blocks,
            "regret_leaderboard": self.regret_leaderboard(),
        }

    def report(self, top: int = 10) -> str:
        """Human-readable view (the CLI's ``--feedback-report``)."""
        summary = self.summary()
        with self._lock:
            worst = sorted(
                self._corrections.items(),
                key=lambda item: (-abs(item[1].log2_rows), item[0]),
            )[:top]
        lines = [
            "feedback report:",
            f"  correction keys     {summary['keys']} "
            f"({summary['active_corrections']} active, "
            f"{summary['samples']} audits ingested)",
            f"  pilot boosts        {len(summary['pilot_boosts'])} "
            f"({len(summary['repilots_pending'])} repilot(s) pending)",
            f"  blocks tracked      {summary['blocks_tracked']}",
        ]
        if worst:
            lines.append("  largest corrections (rows x / bytes x, "
                         "last q-error):")
            for key, correction in worst:
                rows_factor, bytes_factor = correction.factors()
                if rows_factor == 1.0 and bytes_factor == 1.0:
                    continue
                lines.append(
                    f"    x{rows_factor:<8.3g} x{bytes_factor:<8.3g} "
                    f"q={correction.last_qerror_rows:<8.3g} {key}"
                )
        for signature, boost in sorted(summary["pilot_boosts"].items()):
            lines.append(f"  pilot k x{boost:g}  {signature}")
        leaderboard = summary["regret_leaderboard"]
        offenders = [entry for entry in leaderboard
                     if entry["mean_regret"] > 0.0]
        if offenders:
            lines.append("  regret leaderboard (chosen vs best-known "
                         "cost):")
            for entry in offenders[:top]:
                lines.append(
                    f"    mean {entry['mean_regret']:.3f} "
                    f"max {entry['max_regret']:.3f} "
                    f"over {entry['choices']} choice(s): "
                    f"{entry['block'][:100]}"
                )
        else:
            lines.append("  regret: every optimization picked the "
                         "best-known plan")
        return "\n".join(lines)

    def clear(self) -> None:
        """Forget everything learned (benchmark epoch boundaries)."""
        with self._lock:
            self._corrections.clear()
            self._blocks.clear()
            self._pilots.clear()

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write atomically: a failure mid-write must not clobber the
        previous feedback file (same discipline as the metastore)."""
        with self._lock:
            payload = {
                "schema_version": 1,
                "corrections": {
                    key: correction.to_dict()
                    for key, correction in self._corrections.items()
                },
                "pilots": {
                    signature: tuning.to_dict()
                    for signature, tuning in self._pilots.items()
                },
                "blocks": {
                    key: record.to_dict()
                    for key, record in self._blocks.items()
                },
            }
        target = Path(path)
        staging = target.with_name(target.name + ".tmp")
        try:
            staging.write_text(json.dumps(payload, indent=2,
                                          sort_keys=True))
            os.replace(staging, target)
        except BaseException:
            staging.unlink(missing_ok=True)
            raise

    @staticmethod
    def load(path: str | Path) -> "FeedbackStore":
        store = FeedbackStore()
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StatisticsError(
                f"cannot load feedback store: {exc}") from exc
        if not isinstance(payload, dict):
            raise StatisticsError(
                "feedback file must hold a JSON object")
        for key, entry in payload.get("corrections", {}).items():
            store._corrections[key] = _Correction.from_dict(entry)
        for signature, entry in payload.get("pilots", {}).items():
            store._pilots[signature] = _PilotTuning.from_dict(entry)
        for key, entry in payload.get("blocks", {}).items():
            store._blocks[key] = _BlockRegret.from_dict(entry)
        return store
