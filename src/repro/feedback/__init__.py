"""Workload feedback loop: estimate audits drive the next optimization.

See :mod:`repro.feedback.store` for the store (correction factors, pilot
auto-tuning, plan-choice regret) and :mod:`repro.feedback.keys` for the
name-independent keys it learns under. ``docs/feedback.md`` walks through
the design.
"""

from repro.feedback.keys import (
    BlockFeedbackContext,
    block_feedback_context,
    canonical_block_key,
    group_key,
    leaf_identity,
)
from repro.feedback.store import FeedbackStore

__all__ = [
    "BlockFeedbackContext",
    "FeedbackStore",
    "block_feedback_context",
    "canonical_block_key",
    "group_key",
    "leaf_identity",
]
