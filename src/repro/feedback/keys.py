"""Name-independent keys for estimate-audit feedback.

The feedback store must recognize "the same estimate" across queries whose
block/file names differ (the service prefixes every query) and across
DYNOPT iterations (intermediate leaves are per-query DFS files). A group
key therefore renders, for one executed alias set:

* the **composition** -- which leaf alias-sets of the *current* block were
  combined. A first-iteration estimate built from three base leaves and a
  later estimate built from an exact two-alias intermediate plus one base
  leaf are different estimators with different error profiles, so they
  learn separate corrections;
* the **relation identities** under each alias -- a base leaf's statistics
  signature (Section 4.1), an intermediate's provenance when it
  materialized a base leaf (pilot reuse), or its alias set otherwise;
* the join conditions and non-local predicates of the *original* block
  that fall inside the alias set. They describe the semantic content of
  the group's output, which is invariant to when the optimizer applied
  them, so keys match across iterations that placed predicates
  differently.

Aliases come from the query text, not from the service's per-query
renaming, so repeated submissions of one query hit the same keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jaql.blocks import BlockLeaf, JoinBlock
from repro.jaql.expr import Predicate


def leaf_identity(leaf: BlockLeaf) -> str:
    """Name-independent relation identity of one leaf.

    A pilot-substituted intermediate *is* the base leaf it materialized
    (same rows, same statistics), so it keys under that leaf's signature;
    cold runs (pilots substituted) and warm runs (pilots skipped, base
    leaves intact) of one query then share feedback and plan-cache
    entries. Join-result intermediates have no cross-query identity
    beyond their alias set.
    """
    if leaf.is_base:
        return leaf.signature()
    return leaf.provenance or "intermediate"


def canonical_block_key(block: JoinBlock) -> str:
    """Name-independent identity of a join block's remaining work.

    The plan cache keys on it (with a statistics fingerprint); the
    feedback store's regret leaderboard aggregates optimizer choices
    under it. Per-query DFS file names never enter the key, so repeated
    queries -- and iteration-k blocks of repeated queries -- share one
    identity.
    """
    leaf_parts = []
    for leaf in sorted(block.leaves, key=lambda l: tuple(sorted(l.aliases))):
        aliases = "+".join(sorted(leaf.aliases))
        leaf_parts.append(f"{aliases}={leaf_identity(leaf)}")
    conditions = sorted(c.describe() for c in block.conditions)
    predicates = sorted(p.signature() for p in block.non_local_predicates)
    return (
        "leaves[" + ";".join(leaf_parts) + "]"
        "|conds[" + ";".join(conditions) + "]"
        "|preds[" + ";".join(predicates) + "]"
    )


@dataclass(frozen=True)
class BlockFeedbackContext:
    """The original block's identities, captured once per execution.

    DYNOPT substitutes executed sub-plans into the block as it runs, so
    by the time a job's output is audited the block no longer holds the
    original conditions/predicates the estimate priced in. The context
    snapshots them (plus each alias's relation identity) before the loop
    starts, keeping keys stable across iterations.
    """

    alias_identity: dict[str, str]
    conditions: tuple
    predicates: tuple[Predicate, ...]


def block_feedback_context(block: JoinBlock) -> BlockFeedbackContext:
    alias_identity = {
        alias: leaf_identity(leaf)
        for leaf in block.leaves
        for alias in leaf.aliases
    }
    return BlockFeedbackContext(
        alias_identity=alias_identity,
        conditions=tuple(block.conditions),
        predicates=tuple(block.non_local_predicates),
    )


def group_key(context: BlockFeedbackContext, block: JoinBlock,
              aliases: frozenset[str]) -> str | None:
    """Feedback key for the estimate of joining ``aliases``.

    ``block`` is the block the estimate was computed over (the remaining
    block of the current iteration); ``context`` is the snapshot of the
    original block. Returns None when an alias is unknown to the context
    (a recovered/rewritten block the snapshot cannot describe).
    """
    if not aliases:
        return None
    identity_parts = []
    for alias in sorted(aliases):
        identity = context.alias_identity.get(alias)
        if identity is None:
            return None
        identity_parts.append(f"{alias}={identity}")
    composition = sorted(
        "+".join(sorted(leaf.aliases))
        for leaf in block.leaves if leaf.aliases <= aliases
    )
    conditions = sorted(
        condition.describe() for condition in context.conditions
        if condition.aliases() <= aliases
    )
    predicates = sorted(
        predicate.signature() for predicate in context.predicates
        if predicate.references() <= aliases
    )
    return (
        "from[" + ";".join(composition) + "]"
        "|ids[" + ";".join(identity_parts) + "]"
        "|conds[" + ";".join(conditions) + "]"
        "|preds[" + ";".join(predicates) + "]"
    )
