"""Online statistics collection during job execution (Section 5.4).

Each task accumulates a :class:`RunningStats` over its output rows. When the
task finishes, it "writes its statistics to a file and publishes the file's
URL in ZooKeeper"; once all tasks are done, the Jaql client reads the
entries and merges the partial statistics. We reproduce that flow: partial
stats are published to the :class:`CoordinationService` under a job-scoped
key, then merged client-side by :func:`merge_published_stats`.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.coordination import CoordinationService
from repro.data.table import Row
from repro.errors import StatisticsError
from repro.stats.statistics import RunningStats, TableStats


def stats_scope(job_name: str) -> str:
    """Registry scope under which a job's partial statistics live."""
    return f"stats/{job_name}"


class TaskStatsCollector:
    """Per-task accumulator; publishes its partial result on completion."""

    def __init__(self, job_name: str, task_id: str, columns: Iterable[str],
                 coordination: CoordinationService, kmv_size: int = 1024):
        self.job_name = job_name
        self.task_id = task_id
        self.running = RunningStats(columns, kmv_size)
        self._coordination = coordination
        self._published = False

    def observe(self, row: Row, row_bytes: int) -> None:
        if self._published:
            raise StatisticsError(
                f"task {self.task_id} already published its statistics"
            )
        self.running.update(row, row_bytes)

    def observe_batch(self, rows: list[Row], row_sizes: list[int]) -> None:
        """Accumulate one task's output in bulk (same result as per-row).

        ``row_sizes[i]`` is the pre-computed byte size of ``rows[i]`` --
        the runtime sizes each emitted row exactly once and threads the
        size through both the byte counters and this collector.
        """
        if self._published:
            raise StatisticsError(
                f"task {self.task_id} already published its statistics"
            )
        self.running.update_batch(rows, row_sizes)

    def observe_columns(self, provider: object, row_sizes: list[int]) -> None:
        """Accumulate a task's output straight from its column batch.

        ``provider`` is any batch exposing ``column(name)`` and ``len()``
        (see :mod:`repro.data.columns`); the frozen statistics are
        identical to :meth:`observe_batch` over the batch's rows.
        """
        if self._published:
            raise StatisticsError(
                f"task {self.task_id} already published its statistics"
            )
        self.running.update_columns(provider, len(row_sizes), row_sizes)

    def publish(self) -> None:
        """Task finished: publish partial stats (the 'URL in ZooKeeper')."""
        self._coordination.publish(
            stats_scope(self.job_name), self.task_id, self.running
        )
        self._published = True


def merge_published_stats(job_name: str,
                          coordination: CoordinationService,
                          exact: bool = True) -> TableStats | None:
    """Client-side merge of all partial statistics published for a job."""
    entries = coordination.entries(stats_scope(job_name))
    if not entries:
        return None
    partials = [entries[key] for key in sorted(entries)]
    if len(partials) == 1:
        merged = partials[0]
    else:
        # One n-way pass; identical to left-folding pairwise merges but
        # without the quadratic intermediate synopsis/count-table copies.
        merged = RunningStats.merge_all(partials)
    coordination.clear_scope(stats_scope(job_name))
    return merged.freeze(exact=exact)
