"""Table and column statistics (Section 4.3 of the paper).

During pilot runs and online collection DYNO keeps, per table: cardinality
and average tuple size; and per join attribute: min/max values and a KMV
distinct-value synopsis. :class:`RunningStats` is the mutable accumulator a
task updates record by record; :class:`TableStats` is the frozen result the
optimizer consumes, including the paper's extrapolation from a sample
``Rs ⊆ R``:

    |R|_est = size(R) / rec_size_avg            (cardinality)
    DV(R)_est = |R| / |Rs| * DV(Rs)             (distinct values)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.data.table import Row
from repro.errors import StatisticsError
from repro.stats.kmv import KMVSynopsis


def _comparable(value: Any) -> bool:
    return isinstance(value, (int, float, str)) and not isinstance(value, bool)


#: Callable estimating the serialized size of one row.
RowSizer = Callable[[Row], int]

#: Buckets used for the optional equi-depth histograms (paper Section 4.3:
#: "further statistics can be collected, including ... histograms. This
#: would lead to more accurate cost estimations").
HISTOGRAM_BUCKETS = 16

#: Heavy hitters retained per column: the top-K most frequent sampled
#: values with their sample frequency. K=8 keeps the plan payload tiny
#: while covering the head of any Zipf-like distribution worth special
#: casing (rank 9 of Zipf(1.2) is already < 2% of the mass).
HEAVY_HITTER_K = 8


@dataclass(frozen=True)
class Histogram:
    """Equi-depth histogram over a numeric column.

    ``boundaries`` has ``len(counts) + 1`` entries; bucket *i* covers
    ``[boundaries[i], boundaries[i+1]]`` and holds ``counts[i]`` sampled
    values. Selectivity fractions are scale-free, so a histogram built on
    a sample applies unchanged to the extrapolated relation.
    """

    boundaries: tuple[float, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.counts) + 1:
            raise StatisticsError("histogram boundaries/counts mismatch")

    @staticmethod
    def from_counts(value_counts: dict[Any, int],
                    buckets: int = HISTOGRAM_BUCKETS) -> "Histogram | None":
        """Build from exact (value -> count) pairs; None for non-numeric."""
        numeric = [
            (float(value), count) for value, count in value_counts.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
        ]
        if len(numeric) < 2 or len(numeric) < len(value_counts):
            return None
        numeric.sort()
        total = sum(count for _, count in numeric)
        per_bucket = max(1, total // buckets)
        boundaries = [numeric[0][0]]
        counts: list[int] = []
        in_bucket = 0
        last_index = len(numeric) - 1
        for index, (value, count) in enumerate(numeric):
            in_bucket += count
            # Never close a bucket on the final value: the unconditional
            # append below owns it. (Closing there duplicated the last
            # boundary and emitted a zero-width, zero-count trailing
            # bucket.)
            if (index < last_index and in_bucket >= per_bucket
                    and len(counts) < buckets - 1):
                boundaries.append(value)
                counts.append(in_bucket)
                in_bucket = 0
        boundaries.append(numeric[-1][0])
        counts.append(in_bucket)
        return Histogram(tuple(boundaries), tuple(counts))

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fraction_below(self, literal: float) -> float:
        """Estimated fraction of values strictly below ``literal``."""
        total = self.total
        if total == 0:
            return 0.0
        if literal <= self.boundaries[0]:
            return 0.0
        if literal >= self.boundaries[-1]:
            return 1.0
        below = 0.0
        for index, count in enumerate(self.counts):
            low = self.boundaries[index]
            high = self.boundaries[index + 1]
            if literal >= high:
                below += count
                continue
            if literal > low and high > low:
                below += count * (literal - low) / (high - low)
            break
        return min(1.0, below / total)

    def to_lists(self) -> dict[str, list]:
        return {"boundaries": list(self.boundaries),
                "counts": list(self.counts)}

    @staticmethod
    def from_lists(payload: dict[str, list] | None) -> "Histogram | None":
        if not payload:
            return None
        return Histogram(tuple(payload["boundaries"]),
                         tuple(payload["counts"]))

#: Separator for *composite* statistics columns: statistics over the tuple
#: of several attributes, collected when a relation joins a peer on a
#: multi-column key (e.g. lineitem x partsupp on partkey AND suppkey).
COMPOSITE_SEPARATOR = "\x1f"


def composite_name(column_names: Iterable[str]) -> str:
    """Canonical statistics-column name for a composite key."""
    return COMPOSITE_SEPARATOR.join(sorted(column_names))


def composite_parts(name: str) -> list[str]:
    """Inverse of :func:`composite_name`; single columns return [name]."""
    return name.split(COMPOSITE_SEPARATOR)


@dataclass
class ColumnStats:
    """Frozen statistics of one attribute.

    Beyond the paper's min/max/DV triple, the accumulator records the
    sample's frequency profile (``f1``/``f2``: values seen exactly
    once/twice) and a split-overlap ratio, which drive the distinct-value
    extrapolation in :meth:`scaled` (see there). All extra fields default
    to "unknown", in which case extrapolation falls back to the paper's
    linear formula.
    """

    name: str
    distinct_values: float
    min_value: Any = None
    max_value: Any = None
    null_fraction: float = 0.0
    #: values observed exactly once / exactly twice in the sample
    #: (None when per-value counting overflowed its budget).
    f1: float | None = None
    f2: float | None = None
    #: global sample DV divided by the sum of per-split DVs, in (0, 1]:
    #: ~1.0 means splits hold disjoint values (clustered or key-like
    #: columns), small values mean the same values recur in every split.
    split_overlap: float | None = None
    #: non-null observations behind these statistics (sample size).
    sample_count: float | None = None
    #: optional equi-depth histogram over numeric values (Section 4.3's
    #: "additional statistics"); selectivity fractions are scale-free.
    histogram: "Histogram | None" = None
    #: top-K ``(value, fraction)`` pairs over non-null samples, most
    #: frequent first; empty when unknown (count table overflowed).
    #: Fractions are scale-free, so they survive extrapolation unchanged.
    heavy_hitters: tuple = ()

    def scaled(self, factor: float) -> "ColumnStats":
        """Extrapolate distinct values to ``factor = |R| / |Rs|`` x sample.

        The paper scales DV linearly (Section 4.3) and notes that accurate
        extrapolation from samples is future work [9]. Linear scaling is
        exact for unique keys and for values *clustered* by split, but
        wildly overestimates saturated columns (a fact table's foreign key
        has at most as many distinct values as the dimension). We keep the
        linear formula whenever the per-split value sets are (near)
        disjoint -- which is also the unique-key case -- and otherwise use
        the standard sample estimators: Chao (``d + f1^2 / 2 f2``) when
        duplicate structure is visible, else GEE (``sqrt(1/q) f1 + d -
        f1``), both capped by the linear bound. Min/max and the null
        fraction stay as observed.
        """
        d = self.distinct_values
        if d <= 0:
            return ColumnStats(self.name, 0.0, self.min_value,
                               self.max_value, self.null_fraction,
                               self.f1, self.f2, self.split_overlap,
                               self.sample_count, self.histogram,
                               self.heavy_hitters)
        linear = max(1.0, d * factor)
        duplication = (d / self.sample_count
                       if self.sample_count else 1.0)
        if factor <= 1.0:
            # Downscaling (e.g. applying a predicate's selectivity): the
            # conventional proportional reduction.
            estimate = linear
        elif self.split_overlap is None or self.f1 is None:
            estimate = linear  # no profile: the paper's formula
        elif self.split_overlap < 0.9:
            # The same values recur across splits: the column saturates,
            # and the sample behaves like a row-level one -> Chao/GEE.
            estimate = self._sample_estimate(factor, d)
        elif duplication < 0.7:
            # Values are disjoint across splits but repeat *within* one:
            # the column is clustered by split (e.g. a fact table sorted by
            # order key); each new split contributes fresh values, so the
            # paper's linear formula is exact.
            estimate = linear
        else:
            # Nearly all singletons: a sparse domain and a unique key look
            # identical at this sample size. Estimate low (GEE): for
            # broadcast-join safety, underestimating a distinct count only
            # ever *overestimates* join results -- the conservative error.
            estimate = self._sample_estimate(factor, d)
        estimate = min(max(estimate, d), linear)
        return ColumnStats(
            self.name,
            estimate,
            self.min_value,
            self.max_value,
            self.null_fraction,
            self.f1,
            self.f2,
            self.split_overlap,
            self.sample_count,
            self.histogram,
            self.heavy_hitters,
        )

    def _sample_estimate(self, factor: float, d: float) -> float:
        """Chao (1984) when duplicate structure is visible, else GEE."""
        f1 = self.f1 if self.f1 is not None else 0.0
        f2 = self.f2 if self.f2 is not None else 0.0
        if f2 > 0:
            return d + (f1 * f1) / (2.0 * f2)
        return (factor ** 0.5) * f1 + (d - f1)


@dataclass
class TableStats:
    """Frozen statistics of one (virtual) relation.

    ``row_count`` is the estimated cardinality *after* local predicates;
    the optimizer treats the relation as a base table with these statistics
    (Section 5.1: "the statistics given to the optimizer correspond to R'").
    """

    row_count: float
    size_bytes: float
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    #: True when produced by a complete scan (exact), False for samples.
    exact: bool = False

    @property
    def avg_row_size(self) -> float:
        if self.row_count <= 0:
            return 0.0
        return self.size_bytes / self.row_count

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def distinct_values(self, name: str) -> float:
        """Distinct values of ``name``; defaults to |R| when unknown.

        Assuming key-like columns when statistics are missing is the
        standard conservative choice for join-selectivity formulas.
        """
        stats = self.columns.get(name)
        if stats is None or stats.distinct_values <= 0:
            return max(1.0, self.row_count)
        return min(stats.distinct_values, max(1.0, self.row_count))

    def scaled_to(self, row_count: float, size_bytes: float) -> "TableStats":
        """Extrapolate sample statistics to a full relation (Section 4.3)."""
        if self.row_count <= 0:
            return TableStats(row_count, size_bytes, dict(self.columns))
        factor = row_count / self.row_count
        return TableStats(
            row_count,
            size_bytes,
            {
                name: stats.scaled(factor)
                for name, stats in self.columns.items()
            },
            exact=False,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "row_count": self.row_count,
            "size_bytes": self.size_bytes,
            "exact": self.exact,
            "columns": {
                name: {
                    "distinct_values": stats.distinct_values,
                    "min": stats.min_value,
                    "max": stats.max_value,
                    "null_fraction": stats.null_fraction,
                    "histogram": (stats.histogram.to_lists()
                                  if stats.histogram else None),
                    "heavy_hitters": [
                        [list(value) if isinstance(value, tuple) else value,
                         fraction]
                        for value, fraction in stats.heavy_hitters
                    ],
                }
                for name, stats in self.columns.items()
            },
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "TableStats":
        try:
            columns = {
                name: ColumnStats(
                    name,
                    entry["distinct_values"],
                    entry.get("min"),
                    entry.get("max"),
                    entry.get("null_fraction", 0.0),
                    histogram=Histogram.from_lists(entry.get("histogram")),
                    heavy_hitters=tuple(
                        (tuple(value) if isinstance(value, list) else value,
                         fraction)
                        for value, fraction in entry.get("heavy_hitters", [])
                    ),
                )
                for name, entry in payload.get("columns", {}).items()
            }
            return TableStats(
                payload["row_count"],
                payload["size_bytes"],
                columns,
                exact=payload.get("exact", False),
            )
        except KeyError as exc:
            raise StatisticsError(f"malformed statistics payload: {exc}") from exc


class RunningColumn:
    """Mutable per-column accumulator (min/max/nulls/KMV/frequency profile).

    Besides the paper's KMV synopsis, it keeps a *bounded* per-value count
    table (for the f1/f2 frequency profile driving DV extrapolation) and
    the sum of per-split distinct counts (for the split-overlap ratio).
    When the count table exceeds its budget it is dropped and the KMV
    estimate alone is used, exactly as a production system would bound
    task-side memory.
    """

    #: budget for exact per-value counting inside one task / one merge.
    MAX_EXACT_VALUES = 32768

    def __init__(self, name: str, kmv_size: int = 1024):
        self.name = name
        self.synopsis = KMVSynopsis(kmv_size)
        self.min_value: Any = None
        self.max_value: Any = None
        self.null_count = 0
        self.total_count = 0
        self.value_counts: dict[Any, int] | None = {}
        #: sum of per-split distinct counts (set when partials merge).
        self._split_dv_sum: float | None = None

    def update(self, value: Any) -> None:
        self.total_count += 1
        if value is None:
            self.null_count += 1
            return
        self.synopsis.add(value)
        if self.value_counts is not None:
            key = _count_key(value)
            self.value_counts[key] = self.value_counts.get(key, 0) + 1
            if len(self.value_counts) > self.MAX_EXACT_VALUES:
                self.value_counts = None
        if _comparable(value):
            if self.min_value is None or _less(value, self.min_value):
                self.min_value = value
            if self.max_value is None or _less(self.max_value, value):
                self.max_value = value

    def update_many(self, values: list) -> None:
        """Bulk accumulate; final state identical to per-value update.

        Splits the work into phase loops (nulls, synopsis, count table,
        min/max) so each loop hoists its attribute lookups; the KMV
        synopsis ingests through its own bulk path. Non-null relative
        order is preserved, so the count table's insertion order -- and
        therefore the overflow point at which it is dropped -- matches
        the serial accumulator exactly.
        """
        self.total_count += len(values)
        non_null = [value for value in values if value is not None]
        self.null_count += len(values) - len(non_null)
        if not non_null:
            return
        # Uniformly typed scalar batches (the overwhelmingly common case)
        # take C-speed shortcuts below; anything mixed or nested falls back
        # to the per-value loops. Exact ``type`` membership keeps bools
        # (orderable like ints but not _comparable) on the slow path.
        kinds = set(map(type, non_null))
        scalar = kinds <= {int, float, str}
        if scalar:
            # The synopsis is a pure function of the distinct-hash set, so
            # duplicates are no-ops; deduping first hashes each distinct
            # value once. Equality-merged pairs (2 and 2.0) share a
            # canonical hash by design, and bools -- which equal ints but
            # hash differently -- cannot reach this branch.
            self.synopsis.add_all(dict.fromkeys(non_null))
        else:
            self.synopsis.add_all(non_null)
        counts = self.value_counts
        if counts is not None:
            limit = self.MAX_EXACT_VALUES
            if scalar:
                # Scalars are their own _count_key; bulk-count then fold.
                # Crossing the budget drops the table either way, so
                # checking once per batch instead of once per insert
                # reaches the identical final state.
                batch_counts = Counter(non_null)
                if counts:
                    get = counts.get
                    for key, count in batch_counts.items():
                        counts[key] = get(key, 0) + count
                else:
                    counts.update(batch_counts)
                if len(counts) > limit:
                    self.value_counts = None
            else:
                get = counts.get
                for value in non_null:
                    key = _count_key(value)
                    counts[key] = get(key, 0) + 1
                    if len(counts) > limit:
                        self.value_counts = None
                        break
        min_value = self.min_value
        max_value = self.max_value
        if scalar and (kinds <= {int, float} or kinds == {str}):
            # No numeric/string mixing, so _less degenerates to ``<`` and
            # builtins.min/max (first minimal/maximal element, matching
            # the strict-less update rule) give the identical answer.
            batch_min = min(non_null)
            batch_max = max(non_null)
            if min_value is None or _less(batch_min, min_value):
                min_value = batch_min
            if max_value is None or _less(max_value, batch_max):
                max_value = batch_max
        else:
            for value in non_null:
                if _comparable(value):
                    if min_value is None or _less(value, min_value):
                        min_value = value
                    if max_value is None or _less(max_value, value):
                        max_value = value
        self.min_value = min_value
        self.max_value = max_value

    def distinct_count(self) -> float:
        if self.value_counts is not None:
            return float(len(self.value_counts))
        return self.synopsis.estimate()

    def _split_dv_contribution(self) -> float:
        if self._split_dv_sum is not None:
            return self._split_dv_sum
        return self.distinct_count()

    def merge(self, other: "RunningColumn") -> "RunningColumn":
        if self.name != other.name:
            raise StatisticsError(
                f"cannot merge columns {self.name!r} and {other.name!r}"
            )
        merged = RunningColumn(self.name, self.synopsis.k)
        merged.synopsis = self.synopsis.merge(other.synopsis)
        merged.null_count = self.null_count + other.null_count
        merged.total_count = self.total_count + other.total_count
        if self.value_counts is not None and other.value_counts is not None:
            combined = dict(self.value_counts)
            for key, count in other.value_counts.items():
                combined[key] = combined.get(key, 0) + count
            merged.value_counts = (
                combined if len(combined) <= self.MAX_EXACT_VALUES else None
            )
        else:
            merged.value_counts = None
        merged._split_dv_sum = (self._split_dv_contribution()
                                + other._split_dv_contribution())
        for value in (self.min_value, other.min_value):
            if value is not None and (
                merged.min_value is None or _less(value, merged.min_value)
            ):
                merged.min_value = value
        for value in (self.max_value, other.max_value):
            if value is not None and (
                merged.max_value is None or _less(merged.max_value, value)
            ):
                merged.max_value = value
        return merged

    @staticmethod
    def merge_many(columns: "list[RunningColumn]") -> "RunningColumn":
        """N-way merge; identical to left-folding pairwise :meth:`merge`.

        Every constituent is associative and order-respecting: counts sum;
        the synopsis union keeps the k smallest hashes regardless of fold
        shape; the count table survives n-way exactly when it survives
        every fold step (intermediate sizes grow monotonically) with the
        same insertion order; min/max fold left-to-right with the same
        strict-:func:`_less` rule. Doing it in one pass avoids the
        quadratic intermediate copies of n-1 pairwise merges.
        """
        if not columns:
            raise StatisticsError("merge_many requires at least one column")
        first = columns[0]
        name = first.name
        for column in columns:
            if column.name != name:
                raise StatisticsError(
                    f"cannot merge columns {name!r} and {column.name!r}"
                )
        if len(columns) == 1:
            return first.merge(first)
        merged = RunningColumn(name, min(c.synopsis.k for c in columns))
        merged.synopsis = KMVSynopsis.merge_many(
            [column.synopsis for column in columns]
        )
        merged.null_count = sum(column.null_count for column in columns)
        merged.total_count = sum(column.total_count for column in columns)
        if all(column.value_counts is not None for column in columns):
            combined = dict(first.value_counts)  # type: ignore[arg-type]
            get = combined.get
            for column in columns[1:]:
                for key, count in column.value_counts.items():  # type: ignore[union-attr]
                    combined[key] = get(key, 0) + count
            merged.value_counts = (
                combined
                if len(combined) <= RunningColumn.MAX_EXACT_VALUES else None
            )
        else:
            merged.value_counts = None
        merged._split_dv_sum = sum(
            column._split_dv_contribution() for column in columns
        )
        min_value = None
        max_value = None
        for column in columns:
            value = column.min_value
            if value is not None and (
                min_value is None or _less(value, min_value)
            ):
                min_value = value
            value = column.max_value
            if value is not None and (
                max_value is None or _less(max_value, value)
            ):
                max_value = value
        merged.min_value = min_value
        merged.max_value = max_value
        return merged

    def freeze(self) -> ColumnStats:
        null_fraction = (
            self.null_count / self.total_count if self.total_count else 0.0
        )
        distinct = self.distinct_count()
        f1: float | None = None
        f2: float | None = None
        if self.value_counts is not None:
            f1 = float(sum(
                1 for count in self.value_counts.values() if count == 1
            ))
            f2 = float(sum(
                1 for count in self.value_counts.values() if count == 2
            ))
        overlap: float | None = None
        contribution = self._split_dv_contribution()
        if contribution > 0:
            overlap = min(1.0, distinct / contribution)
        histogram = (Histogram.from_counts(self.value_counts)
                     if self.value_counts else None)
        return ColumnStats(
            self.name,
            distinct,
            self.min_value,
            self.max_value,
            null_fraction,
            f1,
            f2,
            overlap,
            float(self.total_count - self.null_count),
            histogram,
            self._heavy_hitters(),
        )

    def _heavy_hitters(self) -> tuple:
        """Top-K ``(value, sample fraction)`` pairs, most frequent first.

        Only available while the exact count table survived its budget;
        ties break by first observation, so the result is a pure function
        of the (order-preserving) merged value stream and therefore
        deterministic across serial/parallel and row/columnar execution.
        """
        counts = self.value_counts
        non_null = self.total_count - self.null_count
        if not counts or non_null <= 0:
            return ()
        order = {key: index for index, key in enumerate(counts)}
        top = sorted(counts.items(),
                     key=lambda item: (-item[1], order[item[0]]))
        return tuple(
            (value, count / non_null)
            for value, count in top[:HEAVY_HITTER_K]
            if count > 1
        )


def _count_key(value: Any) -> Any:
    """Hashable stand-in for a JSON-like value in the count table."""
    if isinstance(value, tuple):
        return tuple(_count_key(item) for item in value)
    if isinstance(value, (dict, list)):
        from repro.data.table import _hashable

        return _hashable(value)
    return value


def _less(left: Any, right: Any) -> bool:
    """Total-order comparison across the mixed types we may observe."""
    if isinstance(left, str) != isinstance(right, str):
        # Mixed numeric/string columns: order numerics before strings.
        return not isinstance(left, str)
    return left < right


class RunningStats:
    """Mutable accumulator over an output stream of rows.

    Column names may be *composite* (see :func:`composite_name`): those
    observe the tuple of the constituent fields, giving the optimizer real
    distinct counts for multi-column join keys.
    """

    def __init__(self, columns: Iterable[str], kmv_size: int = 1024):
        self.row_count = 0
        self.size_bytes = 0
        self.columns = {
            name: RunningColumn(name, kmv_size) for name in columns
        }
        self._parts = {
            name: composite_parts(name) for name in self.columns
            if COMPOSITE_SEPARATOR in name
        }
        self._kmv_size = kmv_size

    def update(self, row: Row, row_bytes: int) -> None:
        self.row_count += 1
        self.size_bytes += row_bytes
        for name, column in self.columns.items():
            parts = self._parts.get(name)
            if parts is None:
                column.update(row.get(name))
                continue
            values = [row.get(part) for part in parts]
            if all(value is None for value in values):
                column.update(None)
            else:
                column.update(tuple(values))

    def update_batch(self, rows: list[Row], row_sizes: list[int]) -> None:
        """Bulk accumulate one task's rows; same result as per-row update.

        Column values are gathered per column first so every
        :class:`RunningColumn` ingests through its bulk path.
        """
        if not rows:
            return
        self.row_count += len(rows)
        self.size_bytes += sum(row_sizes)
        for name, column in self.columns.items():
            parts = self._parts.get(name)
            if parts is None:
                column.update_many([row.get(name) for row in rows])
                continue
            values: list = []
            append = values.append
            for row in rows:
                members = [row.get(part) for part in parts]
                if all(member is None for member in members):
                    append(None)
                else:
                    append(tuple(members))
            column.update_many(values)

    def update_columns(self, provider: Any, row_count: int,
                       row_sizes: list[int]) -> None:
        """Bulk accumulate from a column provider; same result as
        :meth:`update_batch` over the provider's rows.

        ``provider.column(name)`` must return exactly what the row gather
        would -- ``[row.get(name) for row in rows]`` -- which both batch
        classes in :mod:`repro.data.columns` guarantee.
        """
        if not row_count:
            return
        self.row_count += row_count
        self.size_bytes += sum(row_sizes)
        for name, column in self.columns.items():
            parts = self._parts.get(name)
            if parts is None:
                column.update_many(provider.column(name))
                continue
            part_columns = [provider.column(part) for part in parts]
            values: list = []
            append = values.append
            for members in zip(*part_columns):
                if all(member is None for member in members):
                    append(None)
                else:
                    append(members)
            column.update_many(values)

    def merge(self, other: "RunningStats") -> "RunningStats":
        if set(self.columns) != set(other.columns):
            raise StatisticsError("cannot merge stats over different columns")
        merged = RunningStats(self.columns, self._kmv_size)
        merged.row_count = self.row_count + other.row_count
        merged.size_bytes = self.size_bytes + other.size_bytes
        merged.columns = {
            name: column.merge(other.columns[name])
            for name, column in self.columns.items()
        }
        return merged

    @staticmethod
    def merge_all(partials: "list[RunningStats]") -> "RunningStats":
        """N-way merge of task partials; equals left-folding :meth:`merge`.

        The client-side merge after a job with hundreds of tasks is the
        hot path here: one pass per column instead of n-1 intermediate
        :class:`RunningStats` allocations.
        """
        if not partials:
            raise StatisticsError("merge_all requires at least one partial")
        first = partials[0]
        column_set = set(first.columns)
        for partial in partials[1:]:
            if set(partial.columns) != column_set:
                raise StatisticsError(
                    "cannot merge stats over different columns"
                )
        merged = RunningStats(first.columns, first._kmv_size)
        merged.row_count = sum(partial.row_count for partial in partials)
        merged.size_bytes = sum(partial.size_bytes for partial in partials)
        merged.columns = {
            name: RunningColumn.merge_many(
                [partial.columns[name] for partial in partials]
            )
            for name in first.columns
        }
        return merged

    def freeze(self, exact: bool = True) -> TableStats:
        return TableStats(
            float(self.row_count),
            float(self.size_bytes),
            {name: column.freeze() for name, column in self.columns.items()},
            exact=exact,
        )


def requalify_stats(stats: TableStats, alias: str) -> TableStats:
    """Re-qualify single-alias statistics under a different alias.

    Statistics of a base leaf are keyed ``origAlias.column`` (composite
    columns: each part separately). Two leaves scanning the same table with
    the same predicates share one statistics entry (Section 4.1), so a
    self-join's second alias must re-qualify the shared entry to its own
    prefix before use.
    """
    def rename(name: str) -> str:
        parts = composite_parts(name)
        renamed = []
        for part in parts:
            _, _, column = part.partition(".")
            renamed.append(f"{alias}.{column}" if column else part)
        return COMPOSITE_SEPARATOR.join(renamed)

    columns = {}
    for name, column in stats.columns.items():
        new_name = rename(name)
        columns[new_name] = ColumnStats(
            new_name, column.distinct_values, column.min_value,
            column.max_value, column.null_fraction, column.f1, column.f2,
            column.split_overlap, column.sample_count, column.histogram,
            column.heavy_hitters,
        )
    return TableStats(stats.row_count, stats.size_bytes, columns,
                      exact=stats.exact)


def stats_from_table_scan(rows: Iterable[Row], columns: Iterable[str],
                          row_size: RowSizer, kmv_size: int = 1024,
                          ) -> TableStats:
    """Exact statistics from a full scan (used for RELOPT's base stats)."""
    running = RunningStats(columns, kmv_size)
    for row in rows:
        running.update(row, row_size(row))
    return running.freeze(exact=True)
