"""Statistics metastore keyed by expression signature.

Section 4.1 ("Reusability of statistics"): statistics are associated with
the *signature* of the leaf expression that produced them, so recurring
queries -- or the same relation+predicates appearing in different queries --
skip redundant pilot runs. The paper stores statistics in a file; we do the
same (JSON), with an in-memory dict as the hot path.

The store is shared by every driver thread of a
:class:`~repro.service.QueryService`, so all accessors take a lock and
``save()`` serializes a snapshot -- a concurrent ``put()`` used to blow up
the save with "dict changed size during iteration". Listeners registered
with :meth:`subscribe` observe every ``put`` (the service's plan cache uses
this to drop plans whose contributing leaf statistics changed).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import StatisticsError
from repro.stats.statistics import TableStats


class StatisticsMetastore:
    """Signature-keyed store of :class:`TableStats` with file persistence.

    Thread-safe: all accessors hold an internal lock, so concurrent query
    drivers can ``put``/``get``/``save`` without corrupting the store.
    """

    def __init__(self) -> None:
        self._entries: dict[str, TableStats] = {}
        self._lock = threading.RLock()
        self._listeners: list[Callable[[str, TableStats], None]] = []

    # -- dict-like access -------------------------------------------------------

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            return signature in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._entries))

    def get(self, signature: str) -> TableStats | None:
        with self._lock:
            return self._entries.get(signature)

    def put(self, signature: str, stats: TableStats) -> None:
        if not signature:
            raise StatisticsError("empty statistics signature")
        with self._lock:
            self._entries[signature] = stats
            listeners = tuple(self._listeners)
        # Notify outside the lock so a listener may re-enter the store.
        for listener in listeners:
            listener(signature, stats)

    def invalidate(self, signature: str) -> None:
        with self._lock:
            self._entries.pop(signature, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def subscribe(self, listener: Callable[[str, TableStats], None]) -> None:
        """Register a callback invoked after every ``put(signature, stats)``."""
        with self._lock:
            self._listeners.append(listener)

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write atomically: a failure mid-write (disk full, crash, bad
        entry) must not clobber the previous metastore file."""
        with self._lock:
            snapshot = dict(self._entries)
        payload = {
            signature: stats.to_dict()
            for signature, stats in snapshot.items()
        }
        target = Path(path)
        staging = target.with_name(target.name + ".tmp")
        try:
            staging.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(staging, target)
        except BaseException:
            staging.unlink(missing_ok=True)
            raise

    @staticmethod
    def load(path: str | Path) -> "StatisticsMetastore":
        store = StatisticsMetastore()
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StatisticsError(f"cannot load metastore: {exc}") from exc
        if not isinstance(payload, dict):
            raise StatisticsError("metastore file must hold a JSON object")
        for signature, entry in payload.items():
            store.put(signature, TableStats.from_dict(entry))
        return store
