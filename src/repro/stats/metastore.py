"""Statistics metastore keyed by expression signature.

Section 4.1 ("Reusability of statistics"): statistics are associated with
the *signature* of the leaf expression that produced them, so recurring
queries -- or the same relation+predicates appearing in different queries --
skip redundant pilot runs. The paper stores statistics in a file; we do the
same (JSON), with an in-memory dict as the hot path.

The store is shared by every driver thread of a
:class:`~repro.service.QueryService`, so all accessors take a lock and
``save()`` serializes a snapshot -- a concurrent ``put()`` used to blow up
the save with "dict changed size during iteration". Listeners registered
with :meth:`subscribe` observe every ``put`` *and* every ``invalidate``
(the service's plan and result caches use this to drop entries whose
contributing leaf statistics changed; an invalidation passes ``None`` as
the stats argument).

Changing data (repro.incremental) adds two notions on top of the
signature->stats map:

* **table epochs** -- a per-table counter bumped every time the table's
  DFS contents are (re)registered. Epochs are deliberately *not* part of
  any statistics payload: they exist because statistics are lossy (two
  different data states can freeze to identical synopses), so caches that
  must never serve stale rows -- the result cache -- fold the epoch into
  their keys. Epochs are in-memory only; a fresh session re-pilots anyway.
* **delta application** -- :meth:`apply_table_delta` is the CDC layer's
  single entry point for "table T changed by this batch". Append-only
  batches merge row/byte counts into the bare-scan signature (synopses
  kept but demoted to ``exact=False``) and invalidate every predicated
  signature; batches containing deletes or updates invalidate *all* of the
  table's signatures, because RunningStats/KMV synopses cannot un-count a
  removed row -- the next query re-pilots instead of reusing them.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import StatisticsError
from repro.stats.statistics import TableStats


def table_signature_prefix(table: str) -> str:
    """Prefix shared by every base-leaf signature over ``table``."""
    return f"table:{table}|"


def bare_table_signature(table: str) -> str:
    """Signature of an unpredicated scan of ``table``."""
    return table_signature_prefix(table)


class StatisticsMetastore:
    """Signature-keyed store of :class:`TableStats` with file persistence.

    Thread-safe: all accessors hold an internal lock, so concurrent query
    drivers can ``put``/``get``/``save`` without corrupting the store.
    """

    def __init__(self) -> None:
        self._entries: dict[str, TableStats] = {}
        self._lock = threading.RLock()
        self._listeners: list[Callable[[str, TableStats | None], None]] = []
        self._epochs: dict[str, int] = {}

    # -- dict-like access -------------------------------------------------------

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            return signature in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._entries))

    def get(self, signature: str) -> TableStats | None:
        with self._lock:
            return self._entries.get(signature)

    def put(self, signature: str, stats: TableStats) -> None:
        if not signature:
            raise StatisticsError("empty statistics signature")
        with self._lock:
            self._entries[signature] = stats
            listeners = tuple(self._listeners)
        # Notify outside the lock so a listener may re-enter the store.
        for listener in listeners:
            listener(signature, stats)

    def invalidate(self, signature: str) -> None:
        """Drop one entry and notify listeners (stats argument ``None``).

        Notification matters: caches subscribed to the store key their
        entries off contributing signatures, and an invalidation is as
        much a "this leaf's statistics state changed" event as a ``put``
        -- dropping an entry silently used to leave dependent cache
        entries keyed under statistics the store no longer vouches for.
        """
        with self._lock:
            removed = self._entries.pop(signature, None) is not None
            listeners = tuple(self._listeners) if removed else ()
        for listener in listeners:
            listener(signature, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def subscribe(
        self, listener: Callable[[str, TableStats | None], None]
    ) -> None:
        """Register a callback invoked after every ``put(signature,
        stats)`` and every effective ``invalidate(signature)`` (which
        passes ``None`` for the stats)."""
        with self._lock:
            self._listeners.append(listener)

    # -- changing data (repro.incremental) ---------------------------------------

    def table_epoch(self, table: str) -> int:
        """Current data epoch of ``table`` (0 = never registered)."""
        with self._lock:
            return self._epochs.get(table, 0)

    def bump_table_epoch(self, table: str) -> int:
        """Record that ``table``'s DFS contents were (re)written."""
        with self._lock:
            epoch = self._epochs.get(table, 0) + 1
            self._epochs[table] = epoch
            return epoch

    def signatures_for_table(self, table: str) -> list[str]:
        """Every stored base-leaf signature over ``table``, sorted."""
        prefix = table_signature_prefix(table)
        with self._lock:
            return sorted(signature for signature in self._entries
                          if signature.startswith(prefix))

    def apply_table_delta(self, table: str, delta_rows: float,
                          delta_bytes: float,
                          append_only: bool) -> dict[str, str]:
        """Fold one CDC change batch over ``table`` into the store.

        Returns ``{signature: action}`` where action is ``"merged"`` or
        ``"invalidated"``. The rules (see the module docstring):

        * deletes or updates present -> every signature over the table is
          invalidated; synopses cannot un-count, so reusing them would be
          silently wrong and the next query must re-pilot;
        * append-only -> the bare-scan signature gets a conservative
          merge (exact row/byte sums; per-column synopses kept but the
          entry is demoted to ``exact=False`` because distinct counts and
          histograms now under-report the appended rows), while every
          *predicated* signature is invalidated -- the delta's pass rate
          under those predicates is unknown without a pilot.

        Either way the table's epoch is bumped and listeners observe one
        event per touched signature, driving plan- and result-cache
        eviction exactly as ordinary statistics collection does.
        """
        actions: dict[str, str] = {}
        bare = bare_table_signature(table)
        self.bump_table_epoch(table)
        for signature in self.signatures_for_table(table):
            if append_only and signature == bare:
                old = self.get(signature)
                if old is None:  # raced away; nothing to merge
                    continue
                merged = TableStats(
                    row_count=old.row_count + max(delta_rows, 0.0),
                    size_bytes=old.size_bytes + max(delta_bytes, 0.0),
                    columns=dict(old.columns),
                    exact=False,
                )
                self.put(signature, merged)
                actions[signature] = "merged"
            else:
                self.invalidate(signature)
                actions[signature] = "invalidated"
        return actions

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write atomically: a failure mid-write (disk full, crash, bad
        entry) must not clobber the previous metastore file."""
        with self._lock:
            snapshot = dict(self._entries)
        payload = {
            signature: stats.to_dict()
            for signature, stats in snapshot.items()
        }
        target = Path(path)
        staging = target.with_name(target.name + ".tmp")
        try:
            staging.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(staging, target)
        except BaseException:
            staging.unlink(missing_ok=True)
            raise

    @staticmethod
    def load(path: str | Path) -> "StatisticsMetastore":
        store = StatisticsMetastore()
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StatisticsError(f"cannot load metastore: {exc}") from exc
        if not isinstance(payload, dict):
            raise StatisticsError("metastore file must hold a JSON object")
        for signature, entry in payload.items():
            store.put(signature, TableStats.from_dict(entry))
        return store
