"""Statistics metastore keyed by expression signature.

Section 4.1 ("Reusability of statistics"): statistics are associated with
the *signature* of the leaf expression that produced them, so recurring
queries -- or the same relation+predicates appearing in different queries --
skip redundant pilot runs. The paper stores statistics in a file; we do the
same (JSON), with an in-memory dict as the hot path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

from repro.errors import StatisticsError
from repro.stats.statistics import TableStats


class StatisticsMetastore:
    """Signature-keyed store of :class:`TableStats` with file persistence."""

    def __init__(self) -> None:
        self._entries: dict[str, TableStats] = {}

    # -- dict-like access -------------------------------------------------------

    def __contains__(self, signature: str) -> bool:
        return signature in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def get(self, signature: str) -> TableStats | None:
        return self._entries.get(signature)

    def put(self, signature: str, stats: TableStats) -> None:
        if not signature:
            raise StatisticsError("empty statistics signature")
        self._entries[signature] = stats

    def invalidate(self, signature: str) -> None:
        self._entries.pop(signature, None)

    def clear(self) -> None:
        self._entries.clear()

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write atomically: a failure mid-write (disk full, crash, bad
        entry) must not clobber the previous metastore file."""
        payload = {
            signature: stats.to_dict()
            for signature, stats in self._entries.items()
        }
        target = Path(path)
        staging = target.with_name(target.name + ".tmp")
        try:
            staging.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(staging, target)
        except BaseException:
            staging.unlink(missing_ok=True)
            raise

    @staticmethod
    def load(path: str | Path) -> "StatisticsMetastore":
        store = StatisticsMetastore()
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StatisticsError(f"cannot load metastore: {exc}") from exc
        if not isinstance(payload, dict):
            raise StatisticsError("metastore file must hold a JSON object")
        for signature, entry in payload.items():
            store.put(signature, TableStats.from_dict(entry))
        return store
