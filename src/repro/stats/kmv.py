"""KMV (k-minimum-values) synopsis for distinct-value estimation.

Implements the synopsis of Beyer et al. (SIGMOD 2007), exactly as the paper
uses it (Section 4.3): each map task builds a synopsis for its HDFS split;
partial synopses are unioned at the Jaql client; and the unbiased estimator

    DV = (k - 1) * M / h_k

is applied, where ``h_k`` is the largest of the k retained minimum hash
values and ``M`` is the hash domain size. With ``k = 1024`` the estimation
error is bounded by roughly 6%.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Any, Iterable

from repro.errors import StatisticsError

#: Hash domain: 64-bit values, M = 2^64 - 1.
HASH_DOMAIN = (1 << 64) - 1


def kmv_hash(value: Any) -> int:
    """Stable 64-bit hash of a JSON-like value.

    Uses blake2b so results are reproducible across processes (Python's
    built-in ``hash`` is salted for strings). Lists/dicts are canonicalized.
    """
    encoded = _canonical(value).encode("utf-8", "surrogatepass")
    digest = hashlib.blake2b(encoded, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _canonical(value: Any) -> str:
    if value is None:
        return "\x00null"
    if isinstance(value, bool):
        return f"\x01{value}"
    if isinstance(value, int):
        return f"\x02{value}"
    if isinstance(value, float):
        # Integral floats hash like ints so 3.0 and 3 coincide, matching
        # join-key semantics where 3 == 3.0.
        if value.is_integer():
            return f"\x02{int(value)}"
        return f"\x03{value!r}"
    if isinstance(value, str):
        return f"\x04{value}"
    if isinstance(value, (list, tuple)):
        return "\x05[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, dict):
        inner = ",".join(
            f"{key}:{_canonical(item)}"
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
        return "\x06{" + inner + "}"
    raise StatisticsError(f"cannot hash value of type {type(value).__name__}")


class KMVSynopsis:
    """Mergeable set of the k minimum distinct hash values seen so far."""

    def __init__(self, k: int = 1024):
        if k < 2:
            raise StatisticsError("KMV synopsis requires k >= 2")
        self.k = k
        # Max-heap (negated) of the k smallest hashes, plus a set for dedup.
        self._heap: list[int] = []
        self._members: set[int] = set()

    # -- updates ---------------------------------------------------------------

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._add_hash(kmv_hash(value))

    def add_all(self, values: Iterable[Any]) -> None:
        for value in values:
            self.add(value)

    def _add_hash(self, hashed: int) -> None:
        if hashed in self._members:
            return
        if len(self._heap) < self.k:
            self._members.add(hashed)
            heapq.heappush(self._heap, -hashed)
            return
        largest = -self._heap[0]
        if hashed < largest:
            self._members.discard(largest)
            self._members.add(hashed)
            heapq.heapreplace(self._heap, -hashed)

    # -- merge (union of partial synopses, Section 4.3) -------------------------

    def merge(self, other: "KMVSynopsis") -> "KMVSynopsis":
        """Union with another synopsis; result keeps min(k) of the two."""
        merged = KMVSynopsis(min(self.k, other.k))
        for hashed in self._members:
            merged._add_hash(hashed)
        for hashed in other._members:
            merged._add_hash(hashed)
        return merged

    # -- estimation --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_saturated(self) -> bool:
        """True when the synopsis holds k values (estimator applicable)."""
        return len(self._heap) >= self.k

    def estimate(self) -> float:
        """Estimated number of distinct values.

        Below saturation the synopsis has seen every distinct value, so the
        exact count is returned; at saturation the unbiased KMV estimator
        ``(k-1) * M / h_k`` is used.
        """
        if not self._heap:
            return 0.0
        if not self.is_saturated:
            return float(len(self._heap))
        h_k = -self._heap[0]
        if h_k == 0:
            return float(self.k)
        return (self.k - 1) * HASH_DOMAIN / h_k

    def snapshot(self) -> list[int]:
        """Sorted retained hash values (for persistence/tests)."""
        return sorted(self._members)
