"""KMV (k-minimum-values) synopsis for distinct-value estimation.

Implements the synopsis of Beyer et al. (SIGMOD 2007), exactly as the paper
uses it (Section 4.3): each map task builds a synopsis for its HDFS split;
partial synopses are unioned at the Jaql client; and the unbiased estimator

    DV = (k - 1) * M / h_k

is applied, where ``h_k`` is the largest of the k retained minimum hash
values and ``M`` is the hash domain size. With ``k = 1024`` the estimation
error is bounded by roughly 6%.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Any, Iterable

from repro.errors import StatisticsError

#: Hash domain: 64-bit values, M = 2^64 - 1.
HASH_DOMAIN = (1 << 64) - 1

#: Bounded memo of blake2b hashes for scalar join keys. Repeated values --
#: foreign keys during shuffle partitioning, join attributes during online
#: statistics collection -- dominate the hot loops, and re-digesting them
#: is pure waste: blake2b of the same canonical bytes is deterministic, so
#: the cache never changes an emitted hash. Once full, the cache stops
#: admitting (reads keep hitting), bounding memory like a task would.
_HASH_CACHE: dict[Any, int] = {}
_HASH_CACHE_LIMIT = 1 << 16


def _cacheable(value: Any) -> bool:
    """True for values safe to use as memo keys.

    Only exact ``int``/``str`` (and flat tuples of them) qualify: ``bool``
    and integral ``float`` compare equal to ints but canonicalize
    differently, so admitting them would poison the memo.
    """
    kind = type(value)
    if kind is int or kind is str:
        return True
    if kind is tuple:
        return all(type(item) is int or type(item) is str for item in value)
    return False


def kmv_hash(value: Any) -> int:
    """Stable 64-bit hash of a JSON-like value.

    Uses blake2b so results are reproducible across processes (Python's
    built-in ``hash`` is salted for strings). Lists/dicts are canonicalized.
    Scalar ints/strings (and flat tuples of them) are memoized in a bounded
    cache so repeated join keys are digested once per process.
    """
    if _cacheable(value):
        cached = _HASH_CACHE.get(value)
        if cached is not None:
            return cached
        encoded = _canonical(value).encode("utf-8", "surrogatepass")
        digest = hashlib.blake2b(encoded, digest_size=8).digest()
        hashed = int.from_bytes(digest, "big")
        if len(_HASH_CACHE) < _HASH_CACHE_LIMIT:
            _HASH_CACHE[value] = hashed
        return hashed
    encoded = _canonical(value).encode("utf-8", "surrogatepass")
    digest = hashlib.blake2b(encoded, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def clear_hash_cache() -> None:
    """Drop the scalar hash memo (tests / long-lived processes)."""
    _HASH_CACHE.clear()


def _canonical(value: Any) -> str:
    if value is None:
        return "\x00null"
    if isinstance(value, bool):
        return f"\x01{value}"
    if isinstance(value, int):
        return f"\x02{value}"
    if isinstance(value, float):
        # Integral floats hash like ints so 3.0 and 3 coincide, matching
        # join-key semantics where 3 == 3.0.
        if value.is_integer():
            return f"\x02{int(value)}"
        return f"\x03{value!r}"
    if isinstance(value, str):
        return f"\x04{value}"
    if isinstance(value, (list, tuple)):
        return "\x05[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, dict):
        inner = ",".join(
            f"{key}:{_canonical(item)}"
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
        return "\x06{" + inner + "}"
    raise StatisticsError(f"cannot hash value of type {type(value).__name__}")


class KMVSynopsis:
    """Mergeable set of the k minimum distinct hash values seen so far."""

    def __init__(self, k: int = 1024):
        if k < 2:
            raise StatisticsError("KMV synopsis requires k >= 2")
        self.k = k
        # Max-heap (negated) of the k smallest hashes, plus a set for dedup.
        self._heap: list[int] = []
        self._members: set[int] = set()

    # -- updates ---------------------------------------------------------------

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._add_hash(kmv_hash(value))

    def add_all(self, values: Iterable[Any]) -> None:
        """Bulk ingest; final state identical to repeated :meth:`add`.

        The loop hoists attribute lookups and fast-rejects hashes that
        cannot enter a saturated synopsis (``hashed >= h_k`` is either a
        duplicate of a member or too large to retain), which skips the
        membership probe for the overwhelming majority of a large stream.
        """
        heap = self._heap
        members = self._members
        k = self.k
        heappush = heapq.heappush
        heapreplace = heapq.heapreplace
        for value in values:
            if value is None:
                continue
            hashed = kmv_hash(value)
            if len(heap) >= k:
                largest = -heap[0]
                if hashed >= largest or hashed in members:
                    continue
                members.discard(largest)
                members.add(hashed)
                heapreplace(heap, -hashed)
            elif hashed not in members:
                members.add(hashed)
                heappush(heap, -hashed)

    def _add_hash(self, hashed: int) -> None:
        if hashed in self._members:
            return
        if len(self._heap) < self.k:
            self._members.add(hashed)
            heapq.heappush(self._heap, -hashed)
            return
        largest = -self._heap[0]
        if hashed < largest:
            self._members.discard(largest)
            self._members.add(hashed)
            heapq.heapreplace(self._heap, -hashed)

    # -- merge (union of partial synopses, Section 4.3) -------------------------

    def merge(self, other: "KMVSynopsis") -> "KMVSynopsis":
        """Union with another synopsis; result keeps min(k) of the two.

        Built in bulk instead of sifting every member through per-hash
        inserts: any input holding >= k values already bounds the result's
        k-th minimum by its own maximum, so hashes above the smaller such
        maximum cannot survive and are filtered out before one C-level
        sort selects the k smallest. The retained set is identical.
        """
        merged = KMVSynopsis(min(self.k, other.k))
        k = merged.k
        union = self._members | other._members
        if len(union) > k:
            cutoff = None
            if len(self._heap) >= k:
                cutoff = -self._heap[0]
            if len(other._heap) >= k:
                other_max = -other._heap[0]
                cutoff = other_max if cutoff is None else \
                    min(cutoff, other_max)
            candidates = (
                [hashed for hashed in union if hashed <= cutoff]
                if cutoff is not None else union
            )
            retained = sorted(candidates)[:k]
        else:
            retained = list(union)
        merged._members = set(retained)
        merged._heap = [-hashed for hashed in retained]
        heapq.heapify(merged._heap)
        return merged

    @staticmethod
    def merge_many(synopses: "list[KMVSynopsis]") -> "KMVSynopsis":
        """N-way union; identical to left-folding pairwise :meth:`merge`.

        The fold's survivors are exactly the k smallest hashes of the full
        union (every true top-k hash ranks within any subset's top-k, so
        no fold step can drop it; everything else is dropped by the final
        step at the latest), so one union + one C-level sort replaces the
        quadratic membership churn of n-1 pairwise merges.
        """
        if not synopses:
            raise StatisticsError("merge_many requires at least one synopsis")
        if len(synopses) == 1:
            return synopses[0].merge(synopses[0])
        merged = KMVSynopsis(min(synopsis.k for synopsis in synopses))
        k = merged.k
        union: set[int] = set()
        union.update(*(synopsis._members for synopsis in synopses))
        if len(union) > k:
            retained = sorted(union)[:k]
        else:
            retained = list(union)
        merged._members = set(retained)
        merged._heap = [-hashed for hashed in retained]
        heapq.heapify(merged._heap)
        return merged

    # -- estimation --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_saturated(self) -> bool:
        """True when the synopsis holds k values (estimator applicable)."""
        return len(self._heap) >= self.k

    def estimate(self) -> float:
        """Estimated number of distinct values.

        Below saturation the synopsis has seen every distinct value, so the
        exact count is returned; at saturation the unbiased KMV estimator
        ``(k-1) * M / h_k`` is used.
        """
        if not self._heap:
            return 0.0
        if not self.is_saturated:
            return float(len(self._heap))
        h_k = -self._heap[0]
        if h_k == 0:
            return float(self.k)
        return (self.k - 1) * HASH_DOMAIN / h_k

    def snapshot(self) -> list[int]:
        """Sorted retained hash values (for persistence/tests)."""
        return sorted(self._members)
